(* The flight recorder: per-rank ring buffers of events, fed by probe
   points compiled into the simulators. When no recorder is enabled
   anywhere, [on] — a single atomic flag read — is the entire cost of a
   probe, so vanilla timings stay inside the bench regression gate.

   The recorder is domain-local, like the scheduler it observes: a
   sharded runner could in principle enable one recorder per worker,
   but the CLIs force a single worker under --trace so one file holds
   the whole story.

   Attribution: every event carries the pid (MPI rank, parsed from the
   scheduler's "rank<N>" task-naming convention) and a track — the
   scheduler task, overridden by the race detector with the current
   fiber name whenever a detector is attached. Reports query the last K
   events of a (pid, track) pair as "recent history". *)

(* Count of enabled recorders across all domains. Probes bail when it
   is zero without even touching domain-local storage. *)
let armed : int Atomic.t = Atomic.make 0

let on () = Atomic.get armed > 0

type t = {
  capacity : int;
  rings : (int, Event.t Ring.t) Hashtbl.t; (* pid -> ring *)
  vts : (int, float) Hashtbl.t; (* pid -> virtual device seconds so far *)
  t0 : float;
  mutable seq : int;
  mutable epoch : int;
  mutable track : string; (* attribution for the next event *)
  mutable pid : int;
  mutable task : string; (* last scheduler task resumed *)
}

let current : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let enable ?(capacity = 4096) () =
  (match Domain.DLS.get current with
  | Some _ -> () (* re-enabling replaces the recorder, keeps the count *)
  | None -> Atomic.incr armed);
  Domain.DLS.set current
    (Some
       {
         capacity;
         rings = Hashtbl.create 8;
         vts = Hashtbl.create 8;
         t0 = Unix.gettimeofday ();
         seq = 0;
         epoch = 0;
         track = "main";
         pid = -1;
         task = "";
       })

let disable () =
  match Domain.DLS.get current with
  | None -> ()
  | Some _ ->
      Atomic.decr armed;
      Domain.DLS.set current None

let get () = Domain.DLS.get current
let enabled_here () = Option.is_some (get ())
let with_rec f = match get () with None -> () | Some r -> f r

(* Live tap: an optional per-domain callback invoked with every event
   this domain's recorder retains. The daemon installs one around a job
   so subscribed clients can tail the flight recorder; a sink that
   raises is dropped silently (observation may never kill the probe
   site it observes). *)
let sink : (Event.t -> unit) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_sink f = Domain.DLS.set sink (Some f)
let clear_sink () = Domain.DLS.set sink None

let current_pid () = match get () with None -> -1 | Some r -> r.pid

let now_us () =
  match get () with
  | None -> 0.
  | Some r -> (Unix.gettimeofday () -. r.t0) *. 1e6

(* The MPI simulator names rank tasks "rank<N>" (possibly with a
   ":threadM" suffix); anything else has no rank to attribute to. *)
let pid_of_task name =
  try Scanf.sscanf name "rank%d" Fun.id
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> -1

let ring_of r pid =
  match Hashtbl.find_opt r.rings pid with
  | Some ring -> ring
  | None ->
      let ring = Ring.create r.capacity in
      Hashtbl.replace r.rings pid ring;
      ring

let vt_of r pid = try Hashtbl.find r.vts pid with Not_found -> 0.

let emit ?ts_us r phase ~cat ~name ~args =
  let ts_us =
    match ts_us with
    | Some t -> t
    | None -> (Unix.gettimeofday () -. r.t0) *. 1e6
  in
  let e =
    {
      Event.seq = r.seq;
      epoch = r.epoch;
      ts_us;
      vt_us = vt_of r r.pid *. 1e6;
      pid = r.pid;
      track = r.track;
      phase;
      cat;
      name;
      args;
    }
  in
  r.seq <- r.seq + 1;
  Ring.add (ring_of r r.pid) e;
  match Domain.DLS.get sink with
  | None -> ()
  | Some f -> ( try f e with _ -> ())

(* --- probe API (each caller guards with [on]) ------------------------- *)

let instant ?(args = []) ~cat name =
  with_rec (fun r -> emit r Event.Instant ~cat ~name ~args)

let begin_span ?(args = []) ~cat name =
  with_rec (fun r -> emit r Event.Begin ~cat ~name ~args)

let end_span ?(args = []) ~cat name =
  with_rec (fun r -> emit r Event.End ~cat ~name ~args)

let complete ?(args = []) ~cat ~start_us ~dur_us name =
  with_rec (fun r ->
      emit ~ts_us:start_us r (Event.Complete dur_us) ~cat ~name ~args)

(* The race detector retargets attribution whenever it switches or
   activates a fiber. *)
let set_track name = with_rec (fun r -> r.track <- name)

(* Scheduler probe: the cooperative scheduler resumed [task]. Updates
   attribution, and records an instant only when control actually moved
   to a different task (the FIFO run queue resumes the same task many
   times in a row). *)
let task_resume ~task =
  with_rec (fun r ->
      r.pid <- pid_of_task task;
      r.track <- task;
      if r.task <> task then begin
        r.task <- task;
        emit r Event.Instant ~cat:"sched" ~name:"resume"
          ~args:[ ("task", task) ]
      end)

(* Virtual device time: the device simulator charges each op's
   cost-model price to the rank it executed under. *)
let add_vt seconds =
  with_rec (fun r -> Hashtbl.replace r.vts r.pid (vt_of r r.pid +. seconds))

(* The harness bumps the epoch at the start of every run: recent-history
   queries never leak events from an earlier case of a multi-case traced
   session, while the exported timeline keeps everything. *)
let new_epoch () =
  with_rec (fun r ->
      r.epoch <- r.epoch + 1;
      Hashtbl.reset r.vts;
      r.pid <- -1;
      r.track <- "main";
      r.task <- "")

(* --- queries ---------------------------------------------------------- *)

let events () =
  match get () with
  | None -> []
  | Some r ->
      Hashtbl.fold
        (fun _ ring acc -> List.rev_append (Ring.to_list ring) acc)
        r.rings []
      |> List.sort (fun a b -> compare a.Event.seq b.Event.seq)

let dropped () =
  match get () with
  | None -> 0
  | Some r -> Hashtbl.fold (fun _ ring acc -> acc + Ring.dropped ring) r.rings 0

(* The last [k] events of [pid] in the current epoch, restricted to
   [track] when given — the "recent history" that reports embed. *)
let recent ?track ~pid ~k () =
  match get () with
  | None -> []
  | Some r -> (
      match Hashtbl.find_opt r.rings pid with
      | None -> []
      | Some ring ->
          let matching =
            List.filter
              (fun e ->
                e.Event.epoch = r.epoch
                &&
                match track with
                | None -> true
                | Some t -> e.Event.track = t)
              (Ring.to_list ring)
          in
          let n = List.length matching in
          if n <= k then matching
          else List.filteri (fun i _ -> i >= n - k) matching)

let recent_lines ?track ~pid ~k () =
  List.map Event.to_line (recent ?track ~pid ~k ())
