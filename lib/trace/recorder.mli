(** Per-rank ring-buffer flight recorder behind the simulators' probe
    points. Disabled probes cost a single atomic flag read ({!on});
    enabling is domain-local, so each worker of a sharded runner keeps
    an independent recorder (the CLIs force one worker under --trace).

    Probe sites guard with [if Recorder.on () then ...] so the argument
    strings of an event are never even built when tracing is off. *)

val on : unit -> bool
(** Is any recorder enabled? The single flag check on every probe's
    fast path. *)

val enable : ?capacity:int -> unit -> unit
(** Enable recording in this domain with a per-rank ring of [capacity]
    events (default 4096). Re-enabling replaces the recorder. *)

val disable : unit -> unit
(** Drop this domain's recorder (and its events). *)

val enabled_here : unit -> bool
(** Is a recorder enabled in this domain specifically? *)

val set_sink : (Event.t -> unit) -> unit
(** Install a live tap in this domain: every event the recorder retains
    is also handed to the sink (after the ring write). The daemon uses
    this to stream a running job's events to subscribed clients. A sink
    that raises is silenced — observation may never take down the probe
    site. Replaces any previous sink. *)

val clear_sink : unit -> unit
(** Remove this domain's sink, if any. *)

(** {2 Probes} *)

val instant : ?args:(string * string) list -> cat:string -> string -> unit
val begin_span : ?args:(string * string) list -> cat:string -> string -> unit
val end_span : ?args:(string * string) list -> cat:string -> string -> unit

val complete :
  ?args:(string * string) list ->
  cat:string ->
  start_us:float ->
  dur_us:float ->
  string ->
  unit
(** A self-contained span recorded at completion: wall-clock start plus
    a duration in µs of modelled device time. *)

val set_track : string -> unit
(** Attribute subsequent events to this track (the race detector calls
    this with the current fiber name on every fiber switch). *)

val task_resume : task:string -> unit
(** Scheduler probe: task [task] is about to run. Re-derives the pid
    from the "rank<N>" naming convention, resets the track to the task,
    and emits a "resume" instant when control moved between tasks. *)

val add_vt : float -> unit
(** Charge virtual device seconds to the current rank's clock. *)

val new_epoch : unit -> unit
(** Start a new harness run: recent-history queries only see the
    current epoch, while {!events} keeps the whole session. *)

(** {2 Queries} *)

val now_us : unit -> float
(** Wall-clock µs since enable (0 when disabled). *)

val current_pid : unit -> int
val pid_of_task : string -> int

val events : unit -> Event.t list
(** All retained events, merged across ranks in emission order. *)

val dropped : unit -> int
(** Events lost to ring overwriting. *)

val recent : ?track:string -> pid:int -> k:int -> unit -> Event.t list
(** The last [k] events of rank [pid] in the current epoch, restricted
    to [track] when given — the "recent history" reports embed. *)

val recent_lines : ?track:string -> pid:int -> k:int -> unit -> string list
