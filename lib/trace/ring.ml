(* Fixed-capacity overwriting ring buffer: the recorder keeps the last
   [capacity] entries per rank and silently drops the oldest — a flight
   recorder, not an unbounded trace. *)

type 'a t = {
  buf : 'a option array;
  mutable next : int; (* slot the next add writes *)
  mutable total : int; (* adds ever, including overwritten ones *)
}

let create capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { buf = Array.make capacity None; next = 0; total = 0 }

let capacity t = Array.length t.buf
let total t = t.total
let dropped t = max 0 (t.total - Array.length t.buf)

let add t x =
  t.buf.(t.next) <- Some x;
  t.next <- (t.next + 1) mod Array.length t.buf;
  t.total <- t.total + 1

(* Oldest first. When the ring is full the oldest entry sits at [next];
   before that, unwritten slots are [None] and are skipped. *)
let to_list t =
  let n = Array.length t.buf in
  let out = ref [] in
  for k = n - 1 downto 0 do
    match t.buf.((t.next + k) mod n) with
    | Some x -> out := x :: !out
    | None -> ()
  done;
  !out
