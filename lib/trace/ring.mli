(** Fixed-capacity overwriting ring buffer. *)

type 'a t

val create : int -> 'a t
(** [create capacity] — raises [Invalid_argument] unless positive. *)

val capacity : 'a t -> int

val total : 'a t -> int
(** Entries ever added, including overwritten ones. *)

val dropped : 'a t -> int
(** Entries lost to overwriting so far. *)

val add : 'a t -> 'a -> unit
(** Append, overwriting the oldest entry when full. *)

val to_list : 'a t -> 'a list
(** Retained entries, oldest first. *)
