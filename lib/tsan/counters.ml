(* Event counters for the TSan-facing API, matching the "TSan" rows of
   Table I in the paper. *)

type t = {
  mutable fiber_switches : int;
  mutable happens_before : int;
  mutable happens_after : int;
  mutable read_ranges : int;
  mutable write_ranges : int;
  mutable read_bytes : int;
  mutable write_bytes : int;
  (* Shadow hot-path telemetry (not part of Table I): how often the
     per-fiber last-hit region cache resolved without the hashtable,
     how many page-granular transitions stayed uniform (O(1) instead of
     a cell loop), and how many pages had to materialize per-cell
     chunks. *)
  mutable region_cache_hits : int;
  mutable uniform_pages : int;
  mutable materialized_pages : int;
}

let create () =
  {
    fiber_switches = 0;
    happens_before = 0;
    happens_after = 0;
    read_ranges = 0;
    write_ranges = 0;
    read_bytes = 0;
    write_bytes = 0;
    region_cache_hits = 0;
    uniform_pages = 0;
    materialized_pages = 0;
  }

let avg_kb total count = if count = 0 then 0. else float total /. float count /. 1024.

let read_avg_kb t = avg_kb t.read_bytes t.read_ranges
let write_avg_kb t = avg_kb t.write_bytes t.write_ranges

let add ~into t =
  into.fiber_switches <- into.fiber_switches + t.fiber_switches;
  into.happens_before <- into.happens_before + t.happens_before;
  into.happens_after <- into.happens_after + t.happens_after;
  into.read_ranges <- into.read_ranges + t.read_ranges;
  into.write_ranges <- into.write_ranges + t.write_ranges;
  into.read_bytes <- into.read_bytes + t.read_bytes;
  into.write_bytes <- into.write_bytes + t.write_bytes;
  into.region_cache_hits <- into.region_cache_hits + t.region_cache_hits;
  into.uniform_pages <- into.uniform_pages + t.uniform_pages;
  into.materialized_pages <- into.materialized_pages + t.materialized_pages

let pp ppf t =
  Fmt.pf ppf
    "@[<v>Switch To Fiber        %8d@,AnnotateHappensBefore  %8d@,AnnotateHappensAfter   %8d@,Memory Read Range      %8d@,Memory Write Range     %8d@,Memory Read Size [avg KB]  %12.2f@,Memory Write Size [avg KB] %12.2f@]"
    t.fiber_switches t.happens_before t.happens_after t.read_ranges
    t.write_ranges (read_avg_kb t) (write_avg_kb t)
