(** Event counters for the TSan-facing API, matching the "TSan" rows of
    Table I in the paper (fiber switches, happens-before/after
    annotations, range annotations and their sizes). *)

type t = {
  mutable fiber_switches : int;
  mutable happens_before : int;
  mutable happens_after : int;
  mutable read_ranges : int;  (** number of [tsan_read_range] calls *)
  mutable write_ranges : int;
  mutable read_bytes : int;  (** total bytes covered by read ranges *)
  mutable write_bytes : int;
  mutable region_cache_hits : int;
      (** range lookups resolved by the per-fiber last-hit region cache *)
  mutable uniform_pages : int;
      (** page-granular O(1) shadow transitions (uniform fast path) *)
  mutable materialized_pages : int;
      (** pages that diverged into per-cell arena chunks *)
}

val create : unit -> t

val read_avg_kb : t -> float
(** Average size of a read-range annotation in KB ("Memory Read Size
    [avg KB]" of Table I). *)

val write_avg_kb : t -> float

val add : into:t -> t -> unit
(** Accumulate [t] into [into] (aggregating ranks). *)

val pp : Format.formatter -> t -> unit
(** Table I layout. *)
