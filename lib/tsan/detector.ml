(* The race detection engine: a FastTrack-style happens-before detector
   offering the subset of the ThreadSanitizer API that MUST and CuSan
   use — fibers, the AnnotateHappensBefore/After pair keyed by an
   address, and tsan_read_range/tsan_write_range.

   One detector instance corresponds to one process under TSan; the MPI
   simulator creates one per rank. *)

type fiber = {
  tid : int;
  name : string;
  vc : Vclock.t;
  mutable epoch : int; (* cached Epoch.pack tid vc.(tid) *)
  mutable ctx : string list; (* innermost-first context ("stack") *)
}

type t = {
  mutable fibers : fiber list; (* reverse creation order *)
  mutable cur : fiber;
  sync : (int, Vclock.t) Hashtbl.t;
  shadow : Shadow.t;
  counters : Counters.t;
  suppressions : Suppress.t;
  mutable reports : Report.t list; (* reverse detection order *)
  mutable races_total : int; (* including deduplicated / over limit *)
  seen : (string * [ `Read | `Write ] * string * [ `Read | `Write ], unit) Hashtbl.t;
  origins : (string, int) Hashtbl.t;
  mutable origin_names : string array;
  mutable n_origins : int;
  report_limit : int;
  mutable next_tid : int;
}

let refresh_epoch f = f.epoch <- Epoch.pack ~tid:f.tid ~clock:(Vclock.get f.vc f.tid)

let make_fiber t name =
  let tid = t.next_tid in
  t.next_tid <- t.next_tid + 1;
  let vc = Vclock.create () in
  Vclock.set vc tid 1;
  let f = { tid; name; vc; epoch = 0; ctx = [] } in
  refresh_epoch f;
  t.fibers <- f :: t.fibers;
  f

let create ?(granule = 8) ?(report_limit = 64) ?(suppressions = []) () =
  let t =
    {
      fibers = [];
      cur = Obj.magic 0 (* replaced below *);
      sync = Hashtbl.create 64;
      shadow = Shadow.create ~granule ();
      counters = Counters.create ();
      suppressions = Suppress.of_list suppressions;
      reports = [];
      races_total = 0;
      seen = Hashtbl.create 16;
      origins = Hashtbl.create 64;
      origin_names = Array.make 16 "?";
      n_origins = 0;
      report_limit;
      next_tid = 0;
    }
  in
  let main = make_fiber t "main" in
  t.cur <- main;
  t

(* --- origins -------------------------------------------------------- *)

let intern_origin t s =
  match Hashtbl.find_opt t.origins s with
  | Some i -> i
  | None ->
      let i = t.n_origins in
      if i >= Array.length t.origin_names then begin
        let a = Array.make (2 * Array.length t.origin_names) "?" in
        Array.blit t.origin_names 0 a 0 (Array.length t.origin_names);
        t.origin_names <- a
      end;
      t.origin_names.(i) <- s;
      t.n_origins <- i + 1;
      Hashtbl.replace t.origins s i;
      i

let origin_name t i =
  if i >= 0 && i < t.n_origins then t.origin_names.(i) else "?"

let current_origin t =
  match t.cur.ctx with [] -> t.cur.name | o :: _ -> o

(* --- fibers ---------------------------------------------------------- *)

let main_fiber t =
  match List.rev t.fibers with f :: _ -> f | [] -> assert false

let fiber_create t name = make_fiber t name

(* Create a fiber that starts ordered after everything the current fiber
   did so far — the semantics of thread creation (pthread_create
   synchronizes parent and child). *)
let fiber_create_inherit t name =
  let f = make_fiber t name in
  Vclock.join f.vc t.cur.vc;
  Vclock.incr t.cur.vc t.cur.tid;
  refresh_epoch t.cur;
  f

let current_fiber t = t.cur

let switch_to_fiber t f =
  (* A fiber switch is not a synchronization (paper, Section II-A). *)
  t.counters.Counters.fiber_switches <- t.counters.Counters.fiber_switches + 1;
  if Trace.Recorder.on () then Trace.Recorder.set_track f.name;
  t.cur <- f

(* Retarget the detector to a different fiber without recording a fiber
   switch or synchronization: used when the *scheduler* moves between
   host threads — a context the application did not create. *)
let activate_fiber t f =
  if Trace.Recorder.on () then Trace.Recorder.set_track f.name;
  t.cur <- f

(* Fiber switch that also orders everything the current fiber did so far
   before the target fiber's subsequent work (release from the source,
   acquire into the target). CuSan and MUST use this when entering the
   fiber of an operation the host just issued: the kernel launch or
   request happens after the host code preceding it. *)
let switch_to_fiber_sync t f =
  t.counters.Counters.fiber_switches <- t.counters.Counters.fiber_switches + 1;
  if Trace.Recorder.on () then Trace.Recorder.set_track f.name;
  let src = t.cur in
  Vclock.join f.vc src.vc;
  Vclock.incr src.vc src.tid;
  refresh_epoch src;
  t.cur <- f

let fiber_name f = f.name

(* Push/pop a context label on the current fiber; stands in for TSan's
   func_entry/func_exit stack tracking. *)
let push_context t label = t.cur.ctx <- label :: t.cur.ctx

let pop_context t =
  match t.cur.ctx with [] -> () | _ :: rest -> t.cur.ctx <- rest

let with_context t label f =
  push_context t label;
  Fun.protect ~finally:(fun () -> pop_context t) f

(* --- synchronization ------------------------------------------------- *)

(* Release: publish the current fiber's clock under [key] and advance
   the fiber's own component so later accesses are not covered. *)
let happens_before t key =
  t.counters.Counters.happens_before <- t.counters.Counters.happens_before + 1;
  let vc =
    match Hashtbl.find_opt t.sync key with
    | Some vc -> vc
    | None ->
        let vc = Vclock.create () in
        Hashtbl.replace t.sync key vc;
        vc
  in
  Vclock.join vc t.cur.vc;
  Vclock.incr t.cur.vc t.cur.tid;
  refresh_epoch t.cur

(* Acquire: the current fiber learns everything published under [key]. *)
let happens_after t key =
  t.counters.Counters.happens_after <- t.counters.Counters.happens_after + 1;
  match Hashtbl.find_opt t.sync key with
  | None -> () (* wait with no prior signal: no-op, like TSan *)
  | Some vc -> Vclock.join t.cur.vc vc

(* --- race reporting -------------------------------------------------- *)

(* Last-K flight-recorder events to embed per fiber in a report. *)
let history_k = 8

(* Recent history for the fibers of a race: the flight recorder's last
   K events on that fiber's track, falling back to the rank's recent
   events when the fiber recorded none of its own — the report then
   still shows what the rank was doing around the access. *)
let fiber_history fibers =
  if not (Trace.Recorder.on ()) then []
  else
    let pid = Trace.Recorder.current_pid () in
    List.map
      (fun name ->
        match Trace.Recorder.recent_lines ~track:name ~pid ~k:history_k () with
        | [] ->
            ( Fmt.str "rank context; fiber '%s' recorded no events" name,
              Trace.Recorder.recent_lines ~pid ~k:history_k () )
        | lines -> (Fmt.str "fiber '%s'" name, lines))
      fibers

let report t ~addr ~granule ~(cur_kind : [ `Read | `Write ]) ~prev_epoch
    ~prev_origin ~(prev_kind : [ `Read | `Write ]) =
  t.races_total <- t.races_total + 1;
  let prev_fiber =
    match List.find_opt (fun f -> f.tid = Epoch.tid prev_epoch) t.fibers with
    | Some f -> f.name
    | None -> Fmt.str "fiber#%d" (Epoch.tid prev_epoch)
  in
  let r =
    {
      Report.addr;
      bytes = granule;
      current =
        { Report.fiber = t.cur.name; kind = cur_kind; origin = current_origin t };
      previous =
        { Report.fiber = prev_fiber; kind = prev_kind; origin = origin_name t prev_origin };
      location = Report.symbolize addr;
      history =
        fiber_history
          (if prev_fiber = t.cur.name then [ t.cur.name ]
           else [ t.cur.name; prev_fiber ]);
    }
  in
  let key = Report.dedup_key r in
  if (not (Hashtbl.mem t.seen key)) && not (Suppress.check t.suppressions r)
  then begin
    Hashtbl.replace t.seen key ();
    if List.length t.reports < t.report_limit then t.reports <- r :: t.reports
  end

(* --- FastTrack core -------------------------------------------------- *)

let check_write_hb t region i ~cur_kind =
  let we = Array.unsafe_get region.Shadow.w_epoch i in
  if not (Epoch.is_none we || Epoch.hb we t.cur.vc) then
    report t
      ~addr:(region.Shadow.base + (i * region.Shadow.granule))
      ~granule:region.Shadow.granule ~cur_kind ~prev_epoch:we
      ~prev_origin:(Array.unsafe_get region.Shadow.w_origin i)
      ~prev_kind:`Write

let write_cell t region i ~origin =
  let cur = t.cur in
  let e = cur.epoch in
  if Array.unsafe_get region.Shadow.w_epoch i <> e then begin
    (* write-write race? *)
    check_write_hb t region i ~cur_kind:`Write;
    (* read-write race? *)
    let re = Array.unsafe_get region.Shadow.r_epoch i in
    if re = Shadow.promoted then begin
      (match Hashtbl.find_opt region.Shadow.read_vcs i with
      | Some rvc -> (
          match Vclock.find_gt rvc cur.vc with
          | Some (rtid, rclk) ->
              report t
                ~addr:(region.Shadow.base + (i * region.Shadow.granule))
                ~granule:region.Shadow.granule ~cur_kind:`Write
                ~prev_epoch:(Epoch.pack ~tid:rtid ~clock:rclk)
                ~prev_origin:(Array.unsafe_get region.Shadow.r_origin i)
                ~prev_kind:`Read
          | None -> ())
      | None -> ());
      Hashtbl.remove region.Shadow.read_vcs i
    end
    else if not (Epoch.is_none re || Epoch.hb re cur.vc) then
      report t
        ~addr:(region.Shadow.base + (i * region.Shadow.granule))
        ~granule:region.Shadow.granule ~cur_kind:`Write ~prev_epoch:re
        ~prev_origin:(Array.unsafe_get region.Shadow.r_origin i)
        ~prev_kind:`Read;
    Array.unsafe_set region.Shadow.w_epoch i e;
    Array.unsafe_set region.Shadow.w_origin i origin;
    Array.unsafe_set region.Shadow.r_epoch i Epoch.none
  end

let read_cell t region i ~origin =
  let cur = t.cur in
  let e = cur.epoch in
  let re = Array.unsafe_get region.Shadow.r_epoch i in
  if re <> e then begin
    (* write-read race? *)
    check_write_hb t region i ~cur_kind:`Read;
    if re = Shadow.promoted then begin
      (match Hashtbl.find_opt region.Shadow.read_vcs i with
      | Some rvc -> Vclock.set rvc cur.tid (Vclock.get cur.vc cur.tid)
      | None -> ());
      Array.unsafe_set region.Shadow.r_origin i origin
    end
    else if Epoch.is_none re || Epoch.hb re cur.vc then begin
      (* exclusive read: replace the epoch *)
      Array.unsafe_set region.Shadow.r_epoch i e;
      Array.unsafe_set region.Shadow.r_origin i origin
    end
    else begin
      (* concurrent reads from several fibers: promote to a vector clock *)
      let rvc = Vclock.create () in
      Vclock.set rvc (Epoch.tid re) (Epoch.clock re);
      Vclock.set rvc cur.tid (Vclock.get cur.vc cur.tid);
      Hashtbl.replace region.Shadow.read_vcs i rvc;
      Array.unsafe_set region.Shadow.r_epoch i Shadow.promoted;
      Array.unsafe_set region.Shadow.r_origin i origin
    end
  end

(* --- ranges ---------------------------------------------------------- *)

let write_range t ~addr ~len =
  if len > 0 then begin
    t.counters.Counters.write_ranges <- t.counters.Counters.write_ranges + 1;
    t.counters.Counters.write_bytes <- t.counters.Counters.write_bytes + len;
    let region = Shadow.find_or_map t.shadow addr in
    let lo, hi = Shadow.cell_range region ~addr ~len in
    Shadow.touch_range t.shadow region ~lo ~hi;
    let origin = intern_origin t (current_origin t) in
    for i = lo to hi do
      write_cell t region i ~origin
    done
  end

let read_range t ~addr ~len =
  if len > 0 then begin
    t.counters.Counters.read_ranges <- t.counters.Counters.read_ranges + 1;
    t.counters.Counters.read_bytes <- t.counters.Counters.read_bytes + len;
    let region = Shadow.find_or_map t.shadow addr in
    let lo, hi = Shadow.cell_range region ~addr ~len in
    Shadow.touch_range t.shadow region ~lo ~hi;
    let origin = intern_origin t (current_origin t) in
    for i = lo to hi do
      read_cell t region i ~origin
    done
  end

(* --- allocator interception ------------------------------------------ *)

let on_alloc t ~base ~size = ignore (Shadow.map t.shadow ~base ~size)
let on_free t ~base = Shadow.unmap t.shadow ~base

(* --- results --------------------------------------------------------- *)

let races t = List.rev t.reports
let race_count t = List.length t.reports
let races_total t = t.races_total
let counters t = t.counters
let shadow_bytes t = Shadow.shadow_bytes t.shadow
let shadow_bytes_peak t = Shadow.shadow_bytes_peak t.shadow
let suppressed_count t = Suppress.suppressed_count t.suppressions

let sync_bytes t =
  Hashtbl.fold (fun _ vc acc -> acc + (8 * Vclock.size_words vc)) t.sync 0

let pp_races ppf t =
  match races t with
  | [] -> Fmt.pf ppf "no data races detected"
  | rs ->
      Fmt.pf ppf "@[<v>%a@,== %d race report(s), %d raw race event(s)@]"
        (Fmt.list ~sep:Fmt.cut Report.pp) rs (List.length rs) t.races_total
