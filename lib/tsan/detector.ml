(* The race detection engine: a FastTrack-style happens-before detector
   offering the subset of the ThreadSanitizer API that MUST and CuSan
   use — fibers, the AnnotateHappensBefore/After pair keyed by an
   address, and tsan_read_range/tsan_write_range.

   One detector instance corresponds to one process under TSan; the MPI
   simulator creates one per rank.

   Range annotations are extent-batched: one region lookup (usually
   resolved by the fiber's last-hit cache), then one walk over the
   shadow pages the extent covers. Pages that are uniform — the common
   case under CuSan's whole-allocation annotations — transition with a
   constant number of epoch comparisons; only pages whose cells have
   diverged fall back to the per-cell FastTrack loop over the arena
   chunk. The page-granular same-epoch skip is sound for the same
   reason FastTrack's per-cell one is: releasing (happens_before,
   fiber_create_inherit, switch_to_fiber_sync) increments the fiber's
   clock component and refreshes its epoch, so an unchanged epoch
   proves the fiber has published nothing since it last owned the
   page. *)

type fiber = {
  tid : int;
  name : string;
  vc : Vclock.t;
  mutable epoch : int; (* cached Epoch.pack tid vc.(tid) *)
  mutable ctx : string list; (* innermost-first context ("stack") *)
  mutable origin_id : int; (* interned id of the top context; -1 = stale *)
  mutable cache_region : Shadow.region option; (* last-hit region *)
  mutable cache_version : int; (* Shadow.version it was valid for *)
}

type t = {
  mutable fibers : fiber list; (* reverse creation order *)
  mutable cur : fiber;
  sync : (int, Vclock.t) Hashtbl.t;
  shadow : Shadow.t;
  counters : Counters.t;
  suppressions : Suppress.t;
  mutable reports : Report.t list; (* reverse detection order *)
  mutable races_total : int; (* including deduplicated / over limit *)
  seen : (string * [ `Read | `Write ] * string * [ `Read | `Write ], unit) Hashtbl.t;
  origins : (string, int) Hashtbl.t;
  mutable origin_names : string array;
  mutable n_origins : int;
  report_limit : int;
  mutable next_tid : int;
  (* Observer of every checked access range, or None (the overwhelmingly
     common case — a plain field test, so the hot path stays flat). The
     schedule explorer installs one to learn which extents each
     scheduling slice touched; it must not call back into the detector. *)
  mutable observer : (kind:[ `Read | `Write ] -> addr:int -> len:int -> unit) option;
}

let refresh_epoch f = f.epoch <- Epoch.pack ~tid:f.tid ~clock:(Vclock.get f.vc f.tid)

let make_fiber t name =
  let tid = t.next_tid in
  t.next_tid <- t.next_tid + 1;
  let vc = Vclock.create () in
  Vclock.set vc tid 1;
  let f =
    {
      tid;
      name;
      vc;
      epoch = 0;
      ctx = [];
      origin_id = -1;
      cache_region = None;
      cache_version = -1;
    }
  in
  refresh_epoch f;
  t.fibers <- f :: t.fibers;
  f

let create ?(granule = 8) ?(report_limit = 64) ?(suppressions = []) () =
  let t =
    {
      fibers = [];
      cur = Obj.magic 0 (* replaced below *);
      sync = Hashtbl.create 64;
      shadow = Shadow.create ~granule ();
      counters = Counters.create ();
      suppressions = Suppress.of_list suppressions;
      reports = [];
      races_total = 0;
      seen = Hashtbl.create 16;
      origins = Hashtbl.create 64;
      origin_names = Array.make 16 "?";
      n_origins = 0;
      report_limit;
      next_tid = 0;
      observer = None;
    }
  in
  let main = make_fiber t "main" in
  t.cur <- main;
  t

(* --- origins -------------------------------------------------------- *)

let intern_origin t s =
  match Hashtbl.find_opt t.origins s with
  | Some i -> i
  | None ->
      let i = t.n_origins in
      if i >= Array.length t.origin_names then begin
        let a = Array.make (2 * Array.length t.origin_names) "?" in
        Array.blit t.origin_names 0 a 0 (Array.length t.origin_names);
        t.origin_names <- a
      end;
      t.origin_names.(i) <- s;
      t.n_origins <- i + 1;
      Hashtbl.replace t.origins s i;
      i

let origin_name t i =
  if i >= 0 && i < t.n_origins then t.origin_names.(i) else "?"

let current_origin t =
  match t.cur.ctx with [] -> t.cur.name | o :: _ -> o

(* The interned id of the current origin, cached on the fiber until the
   context stack changes — range annotations skip the string hashtable
   probe entirely. *)
let origin_id t =
  let cur = t.cur in
  if cur.origin_id >= 0 then cur.origin_id
  else begin
    let id = intern_origin t (current_origin t) in
    cur.origin_id <- id;
    id
  end

(* --- fibers ---------------------------------------------------------- *)

let main_fiber t =
  match List.rev t.fibers with f :: _ -> f | [] -> assert false

let fiber_create t name = make_fiber t name

(* Create a fiber that starts ordered after everything the current fiber
   did so far — the semantics of thread creation (pthread_create
   synchronizes parent and child). *)
let fiber_create_inherit t name =
  let f = make_fiber t name in
  Vclock.join f.vc t.cur.vc;
  Vclock.incr t.cur.vc t.cur.tid;
  refresh_epoch t.cur;
  f

let current_fiber t = t.cur

let switch_to_fiber t f =
  (* A fiber switch is not a synchronization (paper, Section II-A). *)
  t.counters.Counters.fiber_switches <- t.counters.Counters.fiber_switches + 1;
  if Trace.Recorder.on () then Trace.Recorder.set_track f.name;
  t.cur <- f

(* Retarget the detector to a different fiber without recording a fiber
   switch or synchronization: used when the *scheduler* moves between
   host threads — a context the application did not create. *)
let activate_fiber t f =
  if Trace.Recorder.on () then Trace.Recorder.set_track f.name;
  t.cur <- f

(* Fiber switch that also orders everything the current fiber did so far
   before the target fiber's subsequent work (release from the source,
   acquire into the target). CuSan and MUST use this when entering the
   fiber of an operation the host just issued: the kernel launch or
   request happens after the host code preceding it. *)
let switch_to_fiber_sync t f =
  t.counters.Counters.fiber_switches <- t.counters.Counters.fiber_switches + 1;
  if Trace.Recorder.on () then Trace.Recorder.set_track f.name;
  let src = t.cur in
  Vclock.join f.vc src.vc;
  Vclock.incr src.vc src.tid;
  refresh_epoch src;
  t.cur <- f

let fiber_name f = f.name

(* Push/pop a context label on the current fiber; stands in for TSan's
   func_entry/func_exit stack tracking. *)
let push_context t label =
  t.cur.ctx <- label :: t.cur.ctx;
  t.cur.origin_id <- -1

let pop_context t =
  match t.cur.ctx with
  | [] -> ()
  | _ :: rest ->
      t.cur.ctx <- rest;
      t.cur.origin_id <- -1

let with_context t label f =
  push_context t label;
  Fun.protect ~finally:(fun () -> pop_context t) f

(* --- synchronization ------------------------------------------------- *)

(* Release: publish the current fiber's clock under [key] and advance
   the fiber's own component so later accesses are not covered. *)
let happens_before t key =
  t.counters.Counters.happens_before <- t.counters.Counters.happens_before + 1;
  let vc =
    match Hashtbl.find_opt t.sync key with
    | Some vc -> vc
    | None ->
        let vc = Vclock.create () in
        Hashtbl.replace t.sync key vc;
        vc
  in
  Vclock.join vc t.cur.vc;
  Vclock.incr t.cur.vc t.cur.tid;
  refresh_epoch t.cur

(* Acquire: the current fiber learns everything published under [key]. *)
let happens_after t key =
  t.counters.Counters.happens_after <- t.counters.Counters.happens_after + 1;
  match Hashtbl.find_opt t.sync key with
  | None -> () (* wait with no prior signal: no-op, like TSan *)
  | Some vc -> Vclock.join t.cur.vc vc

(* --- race reporting -------------------------------------------------- *)

(* Last-K flight-recorder events to embed per fiber in a report. *)
let history_k = 8

(* Recent history for the fibers of a race: the flight recorder's last
   K events on that fiber's track, falling back to the rank's recent
   events when the fiber recorded none of its own — the report then
   still shows what the rank was doing around the access. *)
let fiber_history fibers =
  if not (Trace.Recorder.on ()) then []
  else
    let pid = Trace.Recorder.current_pid () in
    List.map
      (fun name ->
        match Trace.Recorder.recent_lines ~track:name ~pid ~k:history_k () with
        | [] ->
            ( Fmt.str "rank context; fiber '%s' recorded no events" name,
              Trace.Recorder.recent_lines ~pid ~k:history_k () )
        | lines -> (Fmt.str "fiber '%s'" name, lines))
      fibers

(* [count] is the number of cells this race event covers: a uniform page
   reports once for all its cells, but the raw-event tally must match
   the per-cell accounting so extent-level detection stays
   verdict-identical to the per-cell walk. *)
let report t ~count ~addr ~granule ~(cur_kind : [ `Read | `Write ]) ~prev_epoch
    ~prev_origin ~(prev_kind : [ `Read | `Write ]) =
  t.races_total <- t.races_total + count;
  let prev_fiber =
    match List.find_opt (fun f -> f.tid = Epoch.tid prev_epoch) t.fibers with
    | Some f -> f.name
    | None -> Fmt.str "fiber#%d" (Epoch.tid prev_epoch)
  in
  let r =
    {
      Report.addr;
      bytes = granule;
      current =
        { Report.fiber = t.cur.name; kind = cur_kind; origin = current_origin t };
      previous =
        { Report.fiber = prev_fiber; kind = prev_kind; origin = origin_name t prev_origin };
      location = Report.symbolize addr;
      history =
        fiber_history
          (if prev_fiber = t.cur.name then [ t.cur.name ]
           else [ t.cur.name; prev_fiber ]);
    }
  in
  let key = Report.dedup_key r in
  if (not (Hashtbl.mem t.seen key)) && not (Suppress.check t.suppressions r)
  then begin
    Hashtbl.replace t.seen key ();
    if List.length t.reports < t.report_limit then t.reports <- r :: t.reports
  end

(* --- FastTrack core -------------------------------------------------- *)

let cell_addr (region : Shadow.region) i =
  region.Shadow.base + (i * region.Shadow.granule)

(* Write transition of a whole uniform page (every cell identical, full
   extent coverage): the per-cell checks degenerate to one write-write
   and one read-write check against the shared quadruple. *)
let write_uniform t (region : Shadow.region) (u : Shadow.uniform) ~addr0
    ~count ~e ~origin =
  let cur = t.cur in
  let granule = region.Shadow.granule in
  let we = u.Shadow.u_we in
  if not (Epoch.is_none we || Epoch.hb we cur.vc) then
    report t ~count ~addr:addr0 ~granule ~cur_kind:`Write ~prev_epoch:we
      ~prev_origin:u.Shadow.u_wo ~prev_kind:`Write;
  let re = u.Shadow.u_re in
  (if re = Shadow.promoted then begin
     (match u.Shadow.u_rvc with
     | Some rvc ->
         (match Vclock.find_gt rvc cur.vc with
         | Some (rtid, rclk) ->
             report t ~count ~addr:addr0 ~granule ~cur_kind:`Write
               ~prev_epoch:(Epoch.pack ~tid:rtid ~clock:rclk)
               ~prev_origin:u.Shadow.u_ro ~prev_kind:`Read
         | None -> ());
         Shadow.vc_free t.shadow rvc
     | None -> ());
     u.Shadow.u_rvc <- None
   end
   else if not (Epoch.is_none re || Epoch.hb re cur.vc) then
     report t ~count ~addr:addr0 ~granule ~cur_kind:`Write ~prev_epoch:re
       ~prev_origin:u.Shadow.u_ro ~prev_kind:`Read);
  u.Shadow.u_we <- e;
  u.Shadow.u_wo <- origin;
  u.Shadow.u_re <- Epoch.none

(* Per-cell write walk over a materialized page's chunk. Returns whether
   the covered cells all ended in the same {e, none, origin} state, so a
   full-page walk can collapse back to a uniform summary (cells skipped
   on the same-epoch fast path may carry an older read epoch or a
   different origin and veto the collapse). *)
let write_cells t (region : Shadow.region) chunk ~first ~l ~h ~e ~origin =
  let cur = t.cur in
  let granule = region.Shadow.granule in
  let uniform = ref true in
  for i = l to h do
    let o = (i - first) * 4 in
    let we = Array.unsafe_get chunk o in
    if we = e then begin
      if
        Array.unsafe_get chunk (o + 1) <> Epoch.none
        || Array.unsafe_get chunk (o + 2) <> origin
      then uniform := false
    end
    else begin
      (* write-write race? *)
      if not (Epoch.is_none we || Epoch.hb we cur.vc) then
        report t ~count:1 ~addr:(cell_addr region i) ~granule ~cur_kind:`Write
          ~prev_epoch:we
          ~prev_origin:(Array.unsafe_get chunk (o + 2))
          ~prev_kind:`Write;
      (* read-write race? *)
      let re = Array.unsafe_get chunk (o + 1) in
      (if re = Shadow.promoted then (
         match Hashtbl.find_opt region.Shadow.read_vcs i with
         | Some rvc ->
             (match Vclock.find_gt rvc cur.vc with
             | Some (rtid, rclk) ->
                 report t ~count:1 ~addr:(cell_addr region i) ~granule
                   ~cur_kind:`Write
                   ~prev_epoch:(Epoch.pack ~tid:rtid ~clock:rclk)
                   ~prev_origin:(Array.unsafe_get chunk (o + 3))
                   ~prev_kind:`Read
             | None -> ());
             Hashtbl.remove region.Shadow.read_vcs i;
             Shadow.vc_free t.shadow rvc
         | None -> ())
       else if not (Epoch.is_none re || Epoch.hb re cur.vc) then
         report t ~count:1 ~addr:(cell_addr region i) ~granule ~cur_kind:`Write
           ~prev_epoch:re
           ~prev_origin:(Array.unsafe_get chunk (o + 3))
           ~prev_kind:`Read);
      Array.unsafe_set chunk o e;
      Array.unsafe_set chunk (o + 2) origin;
      Array.unsafe_set chunk (o + 1) Epoch.none
    end
  done;
  !uniform

(* Read transition of a whole uniform page. *)
let read_uniform t (region : Shadow.region) (u : Shadow.uniform) ~addr0 ~count
    ~e ~origin =
  let cur = t.cur in
  let granule = region.Shadow.granule in
  (* write-read race? *)
  let we = u.Shadow.u_we in
  if not (Epoch.is_none we || Epoch.hb we cur.vc) then
    report t ~count ~addr:addr0 ~granule ~cur_kind:`Read ~prev_epoch:we
      ~prev_origin:u.Shadow.u_wo ~prev_kind:`Write;
  let re = u.Shadow.u_re in
  if re = Shadow.promoted then begin
    (match u.Shadow.u_rvc with
    | Some rvc -> Vclock.set rvc cur.tid (Vclock.get cur.vc cur.tid)
    | None -> ());
    u.Shadow.u_ro <- origin
  end
  else if Epoch.is_none re || Epoch.hb re cur.vc then begin
    (* exclusive read: replace the epoch *)
    u.Shadow.u_re <- e;
    u.Shadow.u_ro <- origin
  end
  else begin
    (* concurrent reads from several fibers: promote to a shared clock *)
    let rvc = Shadow.vc_alloc t.shadow in
    Vclock.set rvc (Epoch.tid re) (Epoch.clock re);
    Vclock.set rvc cur.tid (Vclock.get cur.vc cur.tid);
    u.Shadow.u_rvc <- Some rvc;
    u.Shadow.u_re <- Shadow.promoted;
    u.Shadow.u_ro <- origin
  end

(* Per-cell read walk. Returns [Some (we, wo, ro)] when every covered
   cell ended with identical write state and read epoch [e], so a
   full-page walk can collapse the page back to a uniform summary. *)
let read_cells t (region : Shadow.region) chunk ~first ~l ~h ~e ~origin =
  let cur = t.cur in
  let granule = region.Shadow.granule in
  let uniform = ref true in
  let cwe = ref 0 and cwo = ref 0 and cro = ref 0 in
  for i = l to h do
    let o = (i - first) * 4 in
    let re = Array.unsafe_get chunk (o + 1) in
    if re <> e then begin
      (* write-read race? *)
      let we = Array.unsafe_get chunk o in
      if not (Epoch.is_none we || Epoch.hb we cur.vc) then
        report t ~count:1 ~addr:(cell_addr region i) ~granule ~cur_kind:`Read
          ~prev_epoch:we
          ~prev_origin:(Array.unsafe_get chunk (o + 2))
          ~prev_kind:`Write;
      if re = Shadow.promoted then begin
        (match Hashtbl.find_opt region.Shadow.read_vcs i with
        | Some rvc -> Vclock.set rvc cur.tid (Vclock.get cur.vc cur.tid)
        | None -> ());
        Array.unsafe_set chunk (o + 3) origin;
        uniform := false
      end
      else if Epoch.is_none re || Epoch.hb re cur.vc then begin
        (* exclusive read: replace the epoch *)
        Array.unsafe_set chunk (o + 1) e;
        Array.unsafe_set chunk (o + 3) origin
      end
      else begin
        (* concurrent reads from several fibers: promote to a clock *)
        let rvc = Shadow.vc_alloc t.shadow in
        Vclock.set rvc (Epoch.tid re) (Epoch.clock re);
        Vclock.set rvc cur.tid (Vclock.get cur.vc cur.tid);
        Hashtbl.replace region.Shadow.read_vcs i rvc;
        Array.unsafe_set chunk (o + 1) Shadow.promoted;
        Array.unsafe_set chunk (o + 3) origin;
        uniform := false
      end
    end
    else if re = Shadow.promoted then uniform := false;
    if i = l then begin
      cwe := Array.unsafe_get chunk o;
      cwo := Array.unsafe_get chunk (o + 2);
      cro := Array.unsafe_get chunk (o + 3)
    end
    else if
      Array.unsafe_get chunk o <> !cwe
      || Array.unsafe_get chunk (o + 2) <> !cwo
      || Array.unsafe_get chunk (o + 3) <> !cro
      || Array.unsafe_get chunk (o + 1) <> e
    then uniform := false
  done;
  if !uniform then Some (!cwe, !cwo, !cro) else None

(* --- ranges ---------------------------------------------------------- *)

(* The region for [addr], resolved through the fiber's last-hit cache
   when the shadow map hasn't changed since (Shadow.version guards
   alloc/free/realloc and wild mappings by other fibers). *)
let region_for t addr =
  let cur = t.cur in
  let v = Shadow.version t.shadow in
  match cur.cache_region with
  | Some r
    when cur.cache_version = v
         && addr lsr Shadow.slot_shift = r.Shadow.base lsr Shadow.slot_shift
         && Shadow.covers r addr ->
      t.counters.Counters.region_cache_hits <-
        t.counters.Counters.region_cache_hits + 1;
      r
  | _ ->
      let r = Shadow.find_or_map t.shadow addr in
      cur.cache_region <- Some r;
      (* find_or_map may itself have mapped a wild region *)
      cur.cache_version <- Shadow.version t.shadow;
      r

(* One shadow walk over the pages covering cells [lo..hi]. *)
let write_extent t (region : Shadow.region) ~lo ~hi ~e ~origin =
  let c = t.counters in
  let p0 = lo lsr Shadow.page_shift and p1 = hi lsr Shadow.page_shift in
  for p = p0 to p1 do
    let first = p lsl Shadow.page_shift in
    let last = Shadow.page_last region p in
    let l = if lo > first then lo else first in
    let h = if hi < last then hi else last in
    let full = l = first && h = last in
    match Shadow.page region p with
    | Shadow.Uniform u when u.Shadow.u_we = e ->
        (* The page is owned by the current epoch: since our last write
           we have released nothing, so there is nothing new to check
           and nothing to update — even under partial coverage. *)
        c.Counters.uniform_pages <- c.Counters.uniform_pages + 1
    | Shadow.Untouched when full ->
        c.Counters.uniform_pages <- c.Counters.uniform_pages + 1;
        Shadow.set_uniform t.shadow region p ~we:e ~re:Epoch.none ~wo:origin
          ~ro:0
    | Shadow.Uniform u when full ->
        c.Counters.uniform_pages <- c.Counters.uniform_pages + 1;
        write_uniform t region u ~addr0:(cell_addr region l) ~count:(h - l + 1)
          ~e ~origin
    | st ->
        let chunk =
          match st with
          | Shadow.Cells chunk -> chunk
          | _ ->
              c.Counters.materialized_pages <-
                c.Counters.materialized_pages + 1;
              Shadow.materialize t.shadow region p
        in
        let collapsible = write_cells t region chunk ~first ~l ~h ~e ~origin in
        if full && collapsible then
          Shadow.collapse t.shadow region p ~we:e ~re:Epoch.none ~wo:origin
            ~ro:0
  done

let read_extent t (region : Shadow.region) ~lo ~hi ~e ~origin =
  let c = t.counters in
  let p0 = lo lsr Shadow.page_shift and p1 = hi lsr Shadow.page_shift in
  for p = p0 to p1 do
    let first = p lsl Shadow.page_shift in
    let last = Shadow.page_last region p in
    let l = if lo > first then lo else first in
    let h = if hi < last then hi else last in
    let full = l = first && h = last in
    match Shadow.page region p with
    | Shadow.Uniform u when u.Shadow.u_re = e ->
        c.Counters.uniform_pages <- c.Counters.uniform_pages + 1
    | Shadow.Untouched when full ->
        c.Counters.uniform_pages <- c.Counters.uniform_pages + 1;
        Shadow.set_uniform t.shadow region p ~we:Epoch.none ~re:e ~wo:0
          ~ro:origin
    | Shadow.Uniform u when full ->
        c.Counters.uniform_pages <- c.Counters.uniform_pages + 1;
        read_uniform t region u ~addr0:(cell_addr region l) ~count:(h - l + 1)
          ~e ~origin
    | st -> (
        let chunk =
          match st with
          | Shadow.Cells chunk -> chunk
          | _ ->
              c.Counters.materialized_pages <-
                c.Counters.materialized_pages + 1;
              Shadow.materialize t.shadow region p
        in
        match read_cells t region chunk ~first ~l ~h ~e ~origin with
        | Some (we, wo, ro) when full ->
            Shadow.collapse t.shadow region p ~we ~re:e ~wo ~ro
        | _ -> ())
  done

let set_observer t obs = t.observer <- obs

let notify t ~kind ~addr ~len =
  match t.observer with Some f -> f ~kind ~addr ~len | None -> ()

let write_range t ~addr ~len =
  if len > 0 then begin
    notify t ~kind:`Write ~addr ~len;
    t.counters.Counters.write_ranges <- t.counters.Counters.write_ranges + 1;
    t.counters.Counters.write_bytes <- t.counters.Counters.write_bytes + len;
    let region = region_for t addr in
    let lo, hi = Shadow.cell_range region ~addr ~len in
    let e = t.cur.epoch in
    let origin = origin_id t in
    write_extent t region ~lo ~hi ~e ~origin
  end

let read_range t ~addr ~len =
  if len > 0 then begin
    notify t ~kind:`Read ~addr ~len;
    t.counters.Counters.read_ranges <- t.counters.Counters.read_ranges + 1;
    t.counters.Counters.read_bytes <- t.counters.Counters.read_bytes + len;
    let region = region_for t addr in
    let lo, hi = Shadow.cell_range region ~addr ~len in
    let e = t.cur.epoch in
    let origin = origin_id t in
    read_extent t region ~lo ~hi ~e ~origin
  end

(* Combined read+write annotation of one extent (a kernel argument with
   RW access): exactly read_range followed by write_range, but with the
   region lookup, clamping and origin interning shared. Counters still
   record one read range and one write range so Table I is unchanged. *)
let rw_range t ~addr ~len =
  if len > 0 then begin
    notify t ~kind:`Read ~addr ~len;
    notify t ~kind:`Write ~addr ~len;
    let c = t.counters in
    c.Counters.read_ranges <- c.Counters.read_ranges + 1;
    c.Counters.read_bytes <- c.Counters.read_bytes + len;
    c.Counters.write_ranges <- c.Counters.write_ranges + 1;
    c.Counters.write_bytes <- c.Counters.write_bytes + len;
    let region = region_for t addr in
    let lo, hi = Shadow.cell_range region ~addr ~len in
    let e = t.cur.epoch in
    let origin = origin_id t in
    read_extent t region ~lo ~hi ~e ~origin;
    write_extent t region ~lo ~hi ~e ~origin
  end

(* --- allocator interception ------------------------------------------ *)

let on_alloc t ~base ~size = ignore (Shadow.map t.shadow ~base ~size)
let on_free t ~base = Shadow.unmap t.shadow ~base

(* --- results --------------------------------------------------------- *)

let races t = List.rev t.reports
let race_count t = List.length t.reports
let races_total t = t.races_total
let counters t = t.counters
let shadow_bytes t = Shadow.shadow_bytes t.shadow
let shadow_bytes_peak t = Shadow.shadow_bytes_peak t.shadow
let suppressed_count t = Suppress.suppressed_count t.suppressions

let sync_bytes t =
  Hashtbl.fold (fun _ vc acc -> acc + (8 * Vclock.size_words vc)) t.sync 0

let pp_races ppf t =
  match races t with
  | [] -> Fmt.pf ppf "no data races detected"
  | rs ->
      Fmt.pf ppf "@[<v>%a@,== %d race report(s), %d raw race event(s)@]"
        (Fmt.list ~sep:Fmt.cut Report.pp) rs (List.length rs) t.races_total
