(** The race-detection engine: a FastTrack-style happens-before detector
    offering the subset of the ThreadSanitizer API that MUST and CuSan
    build on — fibers, the [AnnotateHappensBefore]/[AnnotateHappensAfter]
    pair keyed by an integer address, and
    [tsan_read_range]/[tsan_write_range].

    One detector instance corresponds to one process under TSan; the
    harness creates one per MPI rank. Detected races are recorded (and
    deduplicated by origin pair) rather than raised, like TSan's
    reporting. *)

type t
type fiber

val create :
  ?granule:int -> ?report_limit:int -> ?suppressions:string list -> unit -> t
(** A fresh detector whose only fiber is ["main"] (the host thread).
    [granule] is the shadow-cell size in bytes (default 8);
    [report_limit] caps stored reports (default 64); [suppressions] are
    substring patterns, see {!Suppress}. *)

(** {1 Fibers}

    Fibers model user-defined concurrency: CUDA streams, non-blocking
    MPI requests, host threads. Switching fibers does not by itself
    synchronize (paper, Section II-A). *)

val main_fiber : t -> fiber
val fiber_create : t -> string -> fiber

val fiber_create_inherit : t -> string -> fiber
(** Like {!fiber_create}, but the new fiber starts ordered after
    everything the current fiber did so far — thread-creation
    semantics. *)

val current_fiber : t -> fiber
val fiber_name : fiber -> string

val switch_to_fiber : t -> fiber -> unit
(** Plain switch: no synchronization implied. *)

val switch_to_fiber_sync : t -> fiber -> unit
(** Switch that also orders the current fiber's past before the target
    fiber's future (release from source, acquire into target): used when
    entering the fiber of an operation the host just issued. *)

val activate_fiber : t -> fiber -> unit
(** Retarget the detector without recording a switch or synchronizing:
    for scheduler-driven context changes between host threads. *)

(** {1 Contexts}

    A per-fiber stack of labels standing in for call stacks; the top
    label becomes the "origin" of annotated accesses in race reports. *)

val push_context : t -> string -> unit
val pop_context : t -> unit
val with_context : t -> string -> (unit -> 'a) -> 'a

(** {1 Synchronization annotations} *)

val happens_before : t -> int -> unit
(** Release: publish the current fiber's clock under the key and advance
    the fiber's own component. *)

val happens_after : t -> int -> unit
(** Acquire: learn everything published under the key; a no-op when
    nothing was (like TSan). *)

(** {1 Memory access annotations} *)

val read_range : t -> addr:int -> len:int -> unit
val write_range : t -> addr:int -> len:int -> unit

val rw_range : t -> addr:int -> len:int -> unit
(** Read followed by write of one extent (a kernel argument with RW
    access) with the region lookup shared; semantically identical to
    {!read_range} then {!write_range}, and counted as one of each. *)

val set_observer :
  t -> (kind:[ `Read | `Write ] -> addr:int -> len:int -> unit) option -> unit
(** Install (or clear) an observer called with every checked access
    range before it is checked; {!rw_range} reports one read and one
    write. The schedule explorer uses this to learn which extents each
    scheduling slice touched. With no observer installed — the default —
    the cost is one field test per range. The observer must not call
    back into the detector. *)

(** {1 Allocator interception} *)

val on_alloc : t -> base:int -> size:int -> unit
val on_free : t -> base:int -> unit

(** {1 Results} *)

val races : t -> Report.t list
(** Deduplicated reports, in detection order. *)

val race_count : t -> int

val races_total : t -> int
(** Raw race events, including deduplicated and over-limit ones. *)

val counters : t -> Counters.t
val suppressed_count : t -> int

val shadow_bytes : t -> int
(** Materialized shadow memory (see {!Shadow}). *)

val shadow_bytes_peak : t -> int

val sync_bytes : t -> int
(** Footprint of the synchronization-clock table. *)

val pp_races : Format.formatter -> t -> unit
