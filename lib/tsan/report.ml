(* Data race reports. An access is described by the fiber that performed
   it and an "origin": the interned context label active when the access
   was annotated (e.g. "kernel:jacobi" or "MPI_Isend"), standing in for
   the stack trace real TSan would print. *)

type access = {
  fiber : string;
  kind : [ `Read | `Write ];
  origin : string;
}

type t = {
  addr : int;
  bytes : int; (* granule size of the colliding shadow cell *)
  current : access;
  previous : access;
  location : string option; (* symbolized allocation, e.g. "d_anew+256" *)
  history : (string * string list) list;
      (* recent flight-recorder events per involved fiber; [] unless a
         trace recorder was enabled when the race was detected *)
}

let kind_str = function `Read -> "read" | `Write -> "write"

(* Resolves a raw address to a human-readable allocation description —
   TSan's "Location is heap block ..." line. The harness points this at
   the simulated heap; kept as a hook so the detector stays independent
   of the memory simulator. Domain-local, so sharded runners can each
   target their own heap. *)
let symbolizer : (int -> string option) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> fun _ -> None)

let set_symbolizer f = Domain.DLS.set symbolizer f
let symbolize addr = (Domain.DLS.get symbolizer) addr

let pp ppf t =
  Fmt.pf ppf
    "WARNING: data race at 0x%x (%d bytes)@,  %s of size %d by fiber '%s' in %s@,  previous %s by fiber '%s' in %s"
    t.addr t.bytes
    (kind_str t.current.kind)
    t.bytes t.current.fiber t.current.origin
    (kind_str t.previous.kind)
    t.previous.fiber t.previous.origin;
  (match t.location with
  | Some loc -> Fmt.pf ppf "@,  location: %s" loc
  | None -> ());
  List.iter
    (fun (fiber, lines) ->
      Fmt.pf ppf "@,  recent events (%s):" fiber;
      List.iter (fun l -> Fmt.pf ppf "@,    %s" l) lines)
    t.history

let to_string t = Fmt.str "@[<v>%a@]" pp t

(* Key used to deduplicate reports: the same pair of code locations
   racing on many cells of one buffer is one finding. *)
let dedup_key t =
  (t.current.origin, t.current.kind, t.previous.origin, t.previous.kind)
