(** Data race reports.

    An access is described by the fiber that performed it and an
    "origin" — the context label active when it was annotated (e.g.
    ["kernel:jacobi"] or ["MPI_Isend"]), standing in for the stack trace
    real TSan would print. *)

type access = {
  fiber : string;  (** name of the fiber that performed the access *)
  kind : [ `Read | `Write ];
  origin : string;  (** context label, see {!Detector.with_context} *)
}

type t = {
  addr : int;  (** address of the colliding shadow cell *)
  bytes : int;  (** granule size of that cell *)
  current : access;  (** the access that detected the race *)
  previous : access;  (** the unordered earlier access *)
  location : string option;
      (** symbolized allocation (e.g. ["d_anew+256"]), TSan's "Location
          is heap block" line *)
  history : (string * string list) list;
      (** recent flight-recorder events per involved fiber, rendered as
          one-line strings; empty unless a {!Trace.Recorder} was enabled
          when the race was detected *)
}

val kind_str : [ `Read | `Write ] -> string

val set_symbolizer : (int -> string option) -> unit
(** Resolves raw addresses to allocation descriptions in new reports.
    The harness points this at the simulated heap; defaults to
    [fun _ -> None]. The hook is domain-local, so sharded runners can
    each target their own heap. *)

val symbolize : int -> string option
(** Apply the current domain's symbolizer. *)

val pp : Format.formatter -> t -> unit
(** Renders in the style of TSan's "WARNING: data race" reports. *)

val to_string : t -> string

val dedup_key : t -> string * [ `Read | `Write ] * string * [ `Read | `Write ]
(** Key used to deduplicate reports: the same pair of code locations
    racing on many cells of one buffer is a single finding. *)
