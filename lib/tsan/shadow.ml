(* Shadow memory: per-allocation cell arrays recording the last write
   epoch and the last read epoch (or a promoted read vector clock when
   reads are shared between fibers), plus interned origins for reports.

   The simulated address space spaces allocations 2^36 apart (see
   Memsim.Alloc), so the region holding an address is found by one shift
   and a hash lookup. Granularity is configurable: one cell covers
   [granule] bytes; coarser granules cost less time and memory at the
   price of detection precision (ablated in bench/). *)

let slot_shift = 36

type region = {
  base : int;
  size : int;
  granule : int;
  wild : bool; (* mapped on demand for an unshadowed access, not an alloc *)
  w_epoch : int array;
  r_epoch : int array; (* -1 = promoted; look in [read_vcs] *)
  w_origin : int array;
  r_origin : int array;
  read_vcs : (int, Vclock.t) Hashtbl.t;
  touched : Bytes.t; (* bitset over 4 KiB shadow pages, see below *)
  mutable touched_bytes : int;
}

(* Like real TSan, shadow is reserved per mapping but only *materializes*
   (counts towards RSS) when an access touches it: one bit per 4 KiB
   shadow page. This is what makes CuSan's whole-allocation annotations
   of device pointers "the majority of memory usage" (paper, Section
   V-A2) while plain TSan never pays for device memory the host cannot
   touch. *)
let cell_bytes = 4 * 8 (* four word arrays per cell *)
let cells_per_page = 4096 / cell_bytes

(* A slot (one 2^36-aligned window of the address space) usually holds
   exactly one region — the allocation placed at its base. Wild regions
   mapped for unshadowed accesses share the slot's list with it. *)
type t = {
  regions : (int, region list) Hashtbl.t;
  granule : int;
  mutable bytes : int; (* materialized shadow bytes *)
  mutable bytes_peak : int;
}

let promoted = -1

let create ?(granule = 8) () =
  if granule <= 0 then invalid_arg "Shadow.create: granule";
  { regions = Hashtbl.create 64; granule; bytes = 0; bytes_peak = 0 }

let cells_of region = Array.length region.w_epoch

let map ?(wild = false) t ~base ~size =
  let n = max 1 ((size + t.granule - 1) / t.granule) in
  let pages = ((n + cells_per_page - 1) / cells_per_page) + 1 in
  let region =
    {
      base;
      size;
      granule = t.granule;
      wild;
      w_epoch = Array.make n Epoch.none;
      r_epoch = Array.make n Epoch.none;
      w_origin = Array.make n 0;
      r_origin = Array.make n 0;
      read_vcs = Hashtbl.create 4;
      touched = Bytes.make ((pages + 7) / 8) '\000';
      touched_bytes = 0;
    }
  in
  let slot = base lsr slot_shift in
  let others =
    match Hashtbl.find_opt t.regions slot with
    | None -> []
    | Some rs ->
        (* Remapping an existing base (allocator reuse) replaces it. *)
        List.iter
          (fun r -> if r.base = base then t.bytes <- t.bytes - r.touched_bytes)
          rs;
        List.filter (fun r -> r.base <> base) rs
  in
  Hashtbl.replace t.regions slot (region :: others);
  region

(* Mark the shadow pages backing cells [lo..hi] as materialized. *)
let touch_range t region ~lo ~hi =
  let p0 = lo / cells_per_page and p1 = hi / cells_per_page in
  for p = p0 to p1 do
    let byte = p lsr 3 and bit = p land 7 in
    let cur = Char.code (Bytes.unsafe_get region.touched byte) in
    if cur land (1 lsl bit) = 0 then begin
      Bytes.unsafe_set region.touched byte (Char.chr (cur lor (1 lsl bit)));
      region.touched_bytes <- region.touched_bytes + 4096;
      t.bytes <- t.bytes + 4096;
      if t.bytes > t.bytes_peak then t.bytes_peak <- t.bytes
    end
  done

let unmap t ~base =
  let slot = base lsr slot_shift in
  match Hashtbl.find_opt t.regions slot with
  | None -> ()
  | Some rs -> (
      List.iter
        (fun r -> if r.base = base then t.bytes <- t.bytes - r.touched_bytes)
        rs;
      match List.filter (fun r -> r.base <> base) rs with
      | [] -> Hashtbl.remove t.regions slot
      | rs' -> Hashtbl.replace t.regions slot rs')

(* The extent a region answers for. Allocation regions also field
   accesses past their end (clamped to the last cell by [cell_range]) —
   overflowing accesses still collide with the allocation, as they
   would on real shadow. Wild single-granule regions answer only for
   their own granule, so distinct unshadowed addresses never alias. *)
let covers r addr =
  if r.wild then addr >= r.base && addr < r.base + max r.size r.granule
  else addr >= r.base

let find t addr =
  match Hashtbl.find_opt t.regions (addr lsr slot_shift) with
  | None -> None
  | Some rs -> List.find_opt (fun r -> covers r addr) rs

(* Find the region for [addr], mapping a fresh granule-aligned region
   at the access address for addresses TSan never saw allocated (real
   TSan shadows everything). Basing the wild region at the address —
   not at the 2^36 slot base — keeps unrelated unshadowed addresses in
   distinct cells instead of conflating them all into cell 0 of one
   slot-based region. *)
let find_or_map t addr =
  match find t addr with
  | Some r -> r
  | None -> map ~wild:true t ~base:(addr - (addr mod t.granule)) ~size:t.granule

(* Cell index range covering [addr, addr+len). *)
let cell_range region ~addr ~len =
  let lo = (addr - region.base) / region.granule in
  let hi = (addr + len - 1 - region.base) / region.granule in
  let last = cells_of region - 1 in
  (max 0 (min lo last), max 0 (min hi last))

let shadow_bytes t = t.bytes
let shadow_bytes_peak t = t.bytes_peak
