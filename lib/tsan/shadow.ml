(* Shadow memory as flat arena-backed pages.

   A region (one allocation, or a wild single-granule mapping) is an
   array of pages, each covering [cells_per_page] cells of [granule]
   bytes. A page is in one of three states:

   - [Untouched]: never accessed; costs nothing.
   - [Uniform]: every cell of the page carries the same
     {w_epoch, r_epoch, w_origin, r_origin} quadruple. One small summary
     record stands in for the whole page — this is both the fast path
     (the detector transitions a uniform page with O(1) work instead of
     a cell loop) and the memory win (a summary accounts for
     [summary_bytes], not [page_bytes]). CuSan's whole-allocation
     annotations keep almost every page uniform.
   - [Cells]: cells within the page diverged (partial-extent accesses,
     mixed epochs); the page owns a flat arena chunk packing the four
     fields at stride 4, materialized lazily from the summary and
     accounted at the full [page_bytes] — the RSS model fig11 measures.

   The simulated address space spaces allocations 2^36 apart (see
   Memsim.Alloc), so the region holding an address is found by one shift
   and a hash lookup; the detector additionally keeps a per-fiber
   last-hit region cache validated against [version] (bumped on every
   map/unmap) so the common case touches neither.

   Arena chunks and promoted read vector clocks are pooled: unmapping a
   region (allocator reuse, cudaFree) returns its chunks and clocks to
   free lists instead of the GC. *)

let slot_shift = 36

(* Page geometry: 128 cells per page; at the default 8-byte granule one
   page shadows 1 KiB of application memory with 4 KiB of shadow — the
   same 4:1 ratio as the previous per-cell representation and real TSan.
   A uniform summary is accounted at [summary_bytes] (the approximate
   heap cost of the record). *)
let page_shift = 7
let cells_per_page = 1 lsl page_shift
let cell_bytes = 4 * 8 (* four shadow words per cell *)
let page_bytes = cells_per_page * cell_bytes
let summary_bytes = 64

type uniform = {
  mutable u_we : int; (* shared write epoch *)
  mutable u_re : int; (* shared read epoch; [promoted] = see [u_rvc] *)
  mutable u_wo : int; (* shared interned write origin *)
  mutable u_ro : int;
  mutable u_rvc : Vclock.t option; (* shared promoted read clock *)
}

type page =
  | Untouched
  | Uniform of uniform
  | Cells of int array
      (* arena chunk, stride 4: cell i of the page lives at
         [4*i .. 4*i+3] = {w_epoch, r_epoch, w_origin, r_origin} *)

type region = {
  base : int;
  size : int;
  granule : int;
  wild : bool; (* mapped on demand for an unshadowed access, not an alloc *)
  ncells : int;
  pages : page array;
  read_vcs : (int, Vclock.t) Hashtbl.t; (* per-cell promoted clocks *)
  mutable touched_bytes : int;
}

type t = {
  regions : (int, region list) Hashtbl.t;
  granule : int;
  mutable bytes : int; (* materialized shadow bytes *)
  mutable bytes_peak : int;
  mutable version : int; (* bumped on map/unmap; validates caches *)
  mutable chunk_pool : int array list;
  mutable chunk_pool_len : int;
  mutable vc_pool : Vclock.t list;
  mutable vc_pool_len : int;
}

let promoted = -1

let create ?(granule = 8) () =
  if granule <= 0 then invalid_arg "Shadow.create: granule";
  {
    regions = Hashtbl.create 64;
    granule;
    bytes = 0;
    bytes_peak = 0;
    version = 0;
    chunk_pool = [];
    chunk_pool_len = 0;
    vc_pool = [];
    vc_pool_len = 0;
  }

let version t = t.version
let cells_of region = region.ncells

(* --- accounting ------------------------------------------------------ *)

let account t region delta =
  region.touched_bytes <- region.touched_bytes + delta;
  t.bytes <- t.bytes + delta;
  if t.bytes > t.bytes_peak then t.bytes_peak <- t.bytes

(* --- pools ----------------------------------------------------------- *)

let chunk_pool_cap = 64
let vc_pool_cap = 256

let chunk_alloc t =
  match t.chunk_pool with
  | c :: rest ->
      t.chunk_pool <- rest;
      t.chunk_pool_len <- t.chunk_pool_len - 1;
      Array.fill c 0 (Array.length c) 0;
      c
  | [] -> Array.make (4 * cells_per_page) 0

let chunk_free t c =
  if t.chunk_pool_len < chunk_pool_cap then begin
    t.chunk_pool <- c :: t.chunk_pool;
    t.chunk_pool_len <- t.chunk_pool_len + 1
  end

let vc_alloc t =
  match t.vc_pool with
  | vc :: rest ->
      t.vc_pool <- rest;
      t.vc_pool_len <- t.vc_pool_len - 1;
      Vclock.reset vc;
      vc
  | [] -> Vclock.create ()

let vc_free t vc =
  if t.vc_pool_len < vc_pool_cap then begin
    t.vc_pool <- vc :: t.vc_pool;
    t.vc_pool_len <- t.vc_pool_len + 1
  end

(* --- mapping --------------------------------------------------------- *)

let release_region t r =
  Array.iteri
    (fun p st ->
      match st with
      | Untouched -> ()
      | Uniform u ->
          (match u.u_rvc with Some vc -> vc_free t vc | None -> ());
          r.pages.(p) <- Untouched
      | Cells c ->
          chunk_free t c;
          r.pages.(p) <- Untouched)
    r.pages;
  Hashtbl.iter (fun _ vc -> vc_free t vc) r.read_vcs;
  Hashtbl.reset r.read_vcs;
  t.bytes <- t.bytes - r.touched_bytes;
  r.touched_bytes <- 0

let map ?(wild = false) t ~base ~size =
  let n = max 1 ((size + t.granule - 1) / t.granule) in
  let npages = (n + cells_per_page - 1) lsr page_shift in
  let region =
    {
      base;
      size;
      granule = t.granule;
      wild;
      ncells = n;
      pages = Array.make npages Untouched;
      read_vcs = Hashtbl.create 4;
      touched_bytes = 0;
    }
  in
  let slot = base lsr slot_shift in
  let others =
    match Hashtbl.find_opt t.regions slot with
    | None -> []
    | Some rs ->
        (* Remapping an existing base (allocator reuse) replaces it. *)
        List.iter (fun r -> if r.base = base then release_region t r) rs;
        List.filter (fun r -> r.base <> base) rs
  in
  Hashtbl.replace t.regions slot (region :: others);
  t.version <- t.version + 1;
  region

let unmap t ~base =
  let slot = base lsr slot_shift in
  match Hashtbl.find_opt t.regions slot with
  | None -> ()
  | Some rs ->
      List.iter (fun r -> if r.base = base then release_region t r) rs;
      (match List.filter (fun r -> r.base <> base) rs with
      | [] -> Hashtbl.remove t.regions slot
      | rs' -> Hashtbl.replace t.regions slot rs');
      t.version <- t.version + 1

(* The extent a region answers for. Allocation regions also field
   accesses past their end (clamped to the last cell by [cell_range]) —
   overflowing accesses still collide with the allocation, as they
   would on real shadow. Wild single-granule regions answer only for
   their own granule, so distinct unshadowed addresses never alias. *)
let covers r addr =
  if r.wild then addr >= r.base && addr < r.base + max r.size r.granule
  else addr >= r.base

let find t addr =
  match Hashtbl.find_opt t.regions (addr lsr slot_shift) with
  | None -> None
  | Some rs -> List.find_opt (fun r -> covers r addr) rs

(* Find the region for [addr], mapping a fresh granule-aligned region
   at the access address for addresses TSan never saw allocated (real
   TSan shadows everything). Basing the wild region at the address —
   not at the 2^36 slot base — keeps unrelated unshadowed addresses in
   distinct cells instead of conflating them all into cell 0 of one
   slot-based region. *)
let find_or_map t addr =
  match find t addr with
  | Some r -> r
  | None -> map ~wild:true t ~base:(addr - (addr mod t.granule)) ~size:t.granule

(* Cell index range covering [addr, addr+len). *)
let cell_range region ~addr ~len =
  let lo = (addr - region.base) / region.granule in
  let hi = (addr + len - 1 - region.base) / region.granule in
  let last = region.ncells - 1 in
  (max 0 (min lo last), max 0 (min hi last))

(* --- page access ----------------------------------------------------- *)

let npages region = Array.length region.pages
let page region p = Array.unsafe_get region.pages p

(* Last cell index the page [p] actually covers (tail pages may be
   partial). *)
let page_last region p =
  let last = ((p + 1) lsl page_shift) - 1 in
  if last < region.ncells then last else region.ncells - 1

(* Untouched -> Uniform: the whole page takes one shared quadruple. *)
let set_uniform t region p ~we ~re ~wo ~ro =
  region.pages.(p) <- Uniform { u_we = we; u_re = re; u_wo = wo; u_ro = ro; u_rvc = None };
  account t region summary_bytes

(* Untouched/Uniform -> Cells: back the page with an arena chunk,
   spreading the summary (if any) over the cells. A shared promoted
   read clock is copied per cell — each cell's reader set may diverge
   from here on. *)
let materialize t region p =
  let chunk = chunk_alloc t in
  (match region.pages.(p) with
  | Cells _ -> assert false
  | Untouched -> account t region page_bytes
  | Uniform u ->
      let first = p lsl page_shift in
      let last = page_last region p in
      for i = 0 to last - first do
        let o = i * 4 in
        Array.unsafe_set chunk o u.u_we;
        Array.unsafe_set chunk (o + 1) u.u_re;
        Array.unsafe_set chunk (o + 2) u.u_wo;
        Array.unsafe_set chunk (o + 3) u.u_ro
      done;
      (match u.u_rvc with
      | Some rvc ->
          for c = first to last do
            Hashtbl.replace region.read_vcs c (Vclock.copy rvc)
          done;
          vc_free t rvc
      | None -> ());
      account t region (page_bytes - summary_bytes));
  region.pages.(p) <- Cells chunk;
  chunk

(* Cells -> Uniform: a full-page access left every cell identical;
   collapse back to a summary and recycle the chunk. The caller
   guarantees no cell of the page holds a promoted read clock. *)
let collapse t region p ~we ~re ~wo ~ro =
  (match region.pages.(p) with
  | Cells c -> chunk_free t c
  | _ -> assert false);
  region.pages.(p) <- Uniform { u_we = we; u_re = re; u_wo = wo; u_ro = ro; u_rvc = None };
  account t region (summary_bytes - page_bytes)

let shadow_bytes t = t.bytes
let shadow_bytes_peak t = t.bytes_peak
