(** Shadow memory as flat arena-backed pages.

    A region is an array of pages, each covering {!cells_per_page}
    shadow cells of [granule] bytes. Pages are lazily materialized:
    untouched pages cost nothing; pages whose cells all share one
    {w_epoch, r_epoch, w_origin, r_origin} quadruple are a small
    {!uniform} summary (accounted at {!summary_bytes}); only pages whose
    cells diverged own a flat arena chunk accounted at the full
    {!page_bytes}. This is what makes CuSan's whole-allocation
    device-pointer annotations "the majority of memory usage" (paper,
    Section V-A2) in the fig11 RSS model while keeping the common
    full-extent annotation O(1) per page, and plain TSan never pays for
    device memory the host cannot touch.

    Arena chunks and promoted read vector clocks are pooled across
    map/unmap churn. *)

val slot_shift : int
(** Allocations are spaced [2^slot_shift] apart in the simulated address
    space (see {!Memsim.Alloc}), so the region holding an address is one
    shift and a table lookup away. *)

val page_shift : int
(** [cells_per_page = 1 lsl page_shift]. *)

val cells_per_page : int

val cell_bytes : int
(** Bytes of shadow per cell (four shadow words). *)

val page_bytes : int
(** Accounted cost of a materialized (per-cell) page. *)

val summary_bytes : int
(** Accounted cost of a uniform page summary. *)

type uniform = {
  mutable u_we : int;  (** shared write epoch *)
  mutable u_re : int;  (** shared read epoch; {!promoted} = see [u_rvc] *)
  mutable u_wo : int;  (** shared interned write origin *)
  mutable u_ro : int;
  mutable u_rvc : Vclock.t option;  (** shared promoted read clock *)
}

type page =
  | Untouched  (** never accessed; costs nothing *)
  | Uniform of uniform  (** all cells identical: one summary *)
  | Cells of int array
      (** diverged: arena chunk, stride 4 —
          [{w_epoch; r_epoch; w_origin; r_origin}] per cell *)

type region = {
  base : int;
  size : int;
  granule : int;  (** bytes covered by one cell *)
  wild : bool;
      (** mapped on demand for an access TSan never saw allocated; such
          a region answers only for its own granule, so distinct
          unshadowed addresses never alias *)
  ncells : int;
  pages : page array;
  read_vcs : (int, Vclock.t) Hashtbl.t;
      (** per-cell promoted shared-read clocks (materialized pages) *)
  mutable touched_bytes : int;
}

type t

val promoted : int
(** Sentinel read-epoch: the cell's (or uniform page's) reads are
    tracked by a vector clock. *)

val create : ?granule:int -> unit -> t
(** [granule] defaults to 8 bytes per cell; coarser granules cost less
    time and memory at the price of detection precision (ablated in
    [bench/]). *)

val version : t -> int
(** Bumped on every map/unmap; validates the detector's per-fiber
    last-hit region cache. *)

val cells_of : region -> int

val map : ?wild:bool -> t -> base:int -> size:int -> region
(** Reserve shadow for an allocation (no memory is accounted yet).
    [wild] marks an on-demand region for an unshadowed access. *)

val unmap : t -> base:int -> unit
(** Release a region and its accounted bytes (the peak is kept); its
    chunks and clocks return to the pools. *)

val covers : region -> int -> bool
val find : t -> int -> region option

val find_or_map : t -> int -> region
(** The region holding an address, mapping a fresh granule-aligned
    region at the access address for addresses TSan never saw allocated
    (real TSan shadows everything). *)

val cell_range : region -> addr:int -> len:int -> int * int
(** Cell index range covering [addr, addr+len), clamped to the region. *)

val npages : region -> int
val page : region -> int -> page

val page_last : region -> int -> int
(** Last cell index page [p] covers (tail pages may be partial). *)

val set_uniform : t -> region -> int -> we:int -> re:int -> wo:int -> ro:int -> unit
(** Untouched -> Uniform: the page takes one shared quadruple, accounted
    at {!summary_bytes}. *)

val materialize : t -> region -> int -> int array
(** Untouched/Uniform -> Cells: back the page with an arena chunk,
    spreading the summary (shared promoted clocks are copied per cell)
    and accounting the difference up to {!page_bytes}. *)

val collapse : t -> region -> int -> we:int -> re:int -> wo:int -> ro:int -> unit
(** Cells -> Uniform: a full-page access left every cell identical;
    recycle the chunk and account back down to {!summary_bytes}. The
    caller guarantees no cell of the page holds a promoted clock. *)

val vc_alloc : t -> Vclock.t
(** A zeroed vector clock from the pool (promoted-read promotion). *)

val vc_free : t -> Vclock.t -> unit

val shadow_bytes : t -> int
(** Currently materialized shadow bytes (summaries + chunks). *)

val shadow_bytes_peak : t -> int
