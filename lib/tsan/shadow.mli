(** Shadow memory: per-allocation cell arrays recording the last write
    epoch and last read epoch (or a promoted read vector clock when
    reads are shared between fibers), plus interned origins so race
    reports can name the previous access.

    Like real TSan, shadow is reserved per mapping but only
    {e materializes} — counts towards the memory-overhead measurement —
    when an access touches it, at 4 KiB shadow-page granularity. This is
    what makes CuSan's whole-allocation device-pointer annotations "the
    majority of memory usage" (paper, Section V-A2) while plain TSan
    never pays for device memory the host cannot touch. *)

val slot_shift : int
(** Allocations are spaced [2^slot_shift] apart in the simulated address
    space (see {!Memsim.Alloc}), so the region holding an address is one
    shift and a table lookup away. *)

type region = {
  base : int;
  size : int;
  granule : int;  (** bytes covered by one cell *)
  wild : bool;
      (** mapped on demand for an access TSan never saw allocated; such
          a region answers only for its own granule, so distinct
          unshadowed addresses never alias *)
  w_epoch : int array;  (** last write epoch per cell *)
  r_epoch : int array;  (** last read epoch; {!promoted} = see [read_vcs] *)
  w_origin : int array;  (** interned origin of the last write *)
  r_origin : int array;
  read_vcs : (int, Vclock.t) Hashtbl.t;  (** promoted shared-read clocks *)
  touched : Bytes.t;  (** bitset over materialized 4 KiB shadow pages *)
  mutable touched_bytes : int;
}

type t

val promoted : int
(** Sentinel read-epoch: the cell's reads are tracked by a vector clock
    in [read_vcs]. *)

val cell_bytes : int
(** Bytes of shadow per cell (four word-sized arrays). *)

val cells_per_page : int

val create : ?granule:int -> unit -> t
(** [granule] defaults to 8 bytes per cell; coarser granules cost less
    time and memory at the price of detection precision (ablated in
    [bench/]). *)

val cells_of : region -> int

val map : ?wild:bool -> t -> base:int -> size:int -> region
(** Reserve shadow for an allocation (no memory is accounted yet).
    [wild] marks an on-demand region for an unshadowed access. *)

val touch_range : t -> region -> lo:int -> hi:int -> unit
(** Materialize the shadow pages backing cells [lo..hi]. *)

val unmap : t -> base:int -> unit
(** Release a region and its accounted bytes (the peak is kept). *)

val find : t -> int -> region option

val find_or_map : t -> int -> region
(** The region holding an address, mapping a fresh granule-aligned
    region at the access address for addresses TSan never saw allocated
    (real TSan shadows everything). *)

val cell_range : region -> addr:int -> len:int -> int * int
(** Cell index range covering [addr, addr+len), clamped to the region. *)

val shadow_bytes : t -> int
(** Currently materialized shadow bytes. *)

val shadow_bytes_peak : t -> int
