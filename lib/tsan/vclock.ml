(* Growable vector clocks over thread/fiber ids. Index [i] is the last
   logical time of fiber [i] that the owner has synchronized with. *)

type t = { mutable v : int array }

let create () = { v = [||] }

let get t i = if i < Array.length t.v then Array.unsafe_get t.v i else 0

let grow t n =
  if n > Array.length t.v then begin
    let nv = Array.make (max n (2 * Array.length t.v)) 0 in
    Array.blit t.v 0 nv 0 (Array.length t.v);
    t.v <- nv
  end

let set t i x =
  grow t (i + 1);
  t.v.(i) <- x

let incr t i = set t i (get t i + 1)

(* [join dst src] : dst := dst ⊔ src (pointwise max). *)
let join dst src =
  grow dst (Array.length src.v);
  for i = 0 to Array.length src.v - 1 do
    let s = Array.unsafe_get src.v i in
    if s > Array.unsafe_get dst.v i then Array.unsafe_set dst.v i s
  done

let copy t = { v = Array.copy t.v }

(* Zero every component, keeping the capacity: clocks recycled through
   the shadow pool must not leak their previous owner's history. *)
let reset t = Array.fill t.v 0 (Array.length t.v) 0

(* [leq a b] : a ≤ b pointwise — "everything a knows, b knows". *)
let leq a b =
  let n = Array.length a.v in
  let rec go i = i >= n || (get a i <= get b i && go (i + 1)) in
  go 0

(* First component where [a] exceeds [b], i.e. a witness that
   [leq a b] fails. *)
let find_gt a b =
  let n = Array.length a.v in
  let rec go i =
    if i >= n then None
    else if get a i > get b i then Some (i, get a i)
    else go (i + 1)
  in
  go 0

let size_words t = Array.length t.v + 2

let pp ppf t =
  Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any ";") int) t.v

let equal a b =
  let n = max (Array.length a.v) (Array.length b.v) in
  let rec go i = i >= n || (get a i = get b i && go (i + 1)) in
  go 0
