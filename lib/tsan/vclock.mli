(** Growable vector clocks over fiber ids.

    Component [i] of a clock is the latest logical time of fiber [i]
    that the owner has synchronized with. Missing components read as 0,
    so clocks grow on demand as fibers are created. *)

type t

val create : unit -> t
(** The zero clock. *)

val get : t -> int -> int
(** [get c i] is component [i]; 0 when never set. *)

val set : t -> int -> int -> unit
(** [set c i x] stores [x] at component [i], growing the clock. *)

val incr : t -> int -> unit
(** [incr c i] advances component [i] by one. *)

val join : t -> t -> unit
(** [join dst src] sets [dst := dst ⊔ src] (pointwise maximum) — the
    effect of an acquire operation. *)

val copy : t -> t

val reset : t -> unit
(** Zero every component, keeping the capacity — for clock pooling. *)

val leq : t -> t -> bool
(** [leq a b] is the happens-before order: everything [a] knows, [b]
    knows. *)

val find_gt : t -> t -> (int * int) option
(** [find_gt a b] is a witness [(i, a_i)] that [leq a b] fails, if any —
    used to name the conflicting fiber in race reports. *)

val equal : t -> t -> bool

val size_words : t -> int
(** Approximate heap footprint in words, for memory accounting. *)

val pp : Format.formatter -> t -> unit
