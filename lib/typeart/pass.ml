(* The "instrumented allocation site": what TypeART's compiler pass
   turns a malloc/cudaMalloc into. The allocation callback carries the
   statically known type id plus the dynamic extent (paper, Section
   II-C). The CUDA extension of TypeART is exactly that the same
   callbacks fire for cudaMalloc/cudaMallocManaged/cudaHostAlloc, with
   the memory kind recorded (Section IV-C).

   When the runtime is disabled (vanilla builds) the callbacks cost one
   branch, like a pass that was never run. *)

let alloc ?(tag = "alloc") space ty count =
  let bytes = count * Typedb.sizeof ty in
  let p = Memsim.Heap.alloc ~tag space bytes in
  if Rt.enabled () then
    Rt.track_alloc (Rt.instance ()) ~base:(Memsim.Ptr.addr p) ~bytes ~ty ~count
      ~space ~tag;
  p

let free (p : Memsim.Ptr.t) =
  if Rt.enabled () then Rt.track_free (Rt.instance ()) ~base:(Memsim.Ptr.addr p);
  Memsim.Heap.free p

(* Convenience queries against the calling domain's runtime. *)

let type_at addr = Rt.type_at (Rt.instance ()) ~addr
let extent_at addr = Rt.extent_at (Rt.instance ()) ~addr
let lookup addr = Rt.lookup (Rt.instance ()) ~addr
