(* The TypeART runtime: a lookup table from addresses to allocation
   metadata (type, dynamic element count, memory kind), fed by the
   instrumented allocation sites and queried by MUST (datatype checks)
   and CuSan (device-pointer extents) — see Fig. 2 of the paper. *)

type info = {
  base : int;
  bytes : int;
  ty : Typedb.ty;
  count : int;
  space : Memsim.Space.t;
  tag : string;
}

let slot_shift = Memsim.Alloc.addr_shift

type t = {
  table : (int, info) Hashtbl.t; (* keyed by base lsr slot_shift *)
  mutable tracked_allocs : int;
  mutable tracked_frees : int;
}

let create () = { table = Hashtbl.create 64; tracked_allocs = 0; tracked_frees = 0 }

(* The runtime instance, like the TypeART runtime linked into the
   executable. Tool configurations enable it per run. Both the instance
   and the enable flag are domain-local so sharded runners track
   allocations independently. *)
type dstate = { inst : t; mutable on : bool }

let dstate : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { inst = create (); on = false })

let instance () = (Domain.DLS.get dstate).inst
let enabled () = (Domain.DLS.get dstate).on
let set_enabled b = (Domain.DLS.get dstate).on <- b

let reset () =
  let i = instance () in
  Hashtbl.reset i.table;
  i.tracked_allocs <- 0;
  i.tracked_frees <- 0

let track_alloc t ~base ~bytes ~ty ~count ~space ~tag =
  t.tracked_allocs <- t.tracked_allocs + 1;
  Hashtbl.replace t.table (base lsr slot_shift)
    { base; bytes; ty; count; space; tag }

let track_free t ~base =
  t.tracked_frees <- t.tracked_frees + 1;
  Hashtbl.remove t.table (base lsr slot_shift)

(* Resolve an interior pointer to its allocation record. *)
let lookup t ~addr =
  match Hashtbl.find_opt t.table (addr lsr slot_shift) with
  | Some info when addr >= info.base && addr < info.base + info.bytes ->
      Some info
  | _ -> None

(* TypeART's main query: the element type at [addr] plus how many whole
   elements remain from that offset to the end of the allocation. *)
let type_at t ~addr =
  match lookup t ~addr with
  | None -> None
  | Some info ->
      let off = addr - info.base in
      let esz = Typedb.sizeof info.ty in
      let remaining = (info.bytes - off) / esz in
      Some (info.ty, remaining)

(* Remaining bytes from [addr] to the end of its allocation; what CuSan
   asks for to annotate a whole device-pointer range. *)
let extent_at t ~addr =
  match lookup t ~addr with
  | None -> None
  | Some info -> Some (info.bytes - (addr - info.base))

let stats t = (t.tracked_allocs, t.tracked_frees, Hashtbl.length t.table)
