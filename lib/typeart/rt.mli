(** The TypeART runtime: a lookup table from addresses to allocation
    metadata (type, dynamic element count, memory kind), fed by
    instrumented allocation sites and queried by MUST (datatype checks)
    and CuSan (device-pointer extents) — Fig. 2 of the paper. *)

type info = {
  base : int;
  bytes : int;
  ty : Typedb.ty;
  count : int;  (** elements of [ty] *)
  space : Memsim.Space.t;
  tag : string;
}

type t

val create : unit -> t

val instance : unit -> t
(** The calling domain's runtime instance, like the TypeART runtime
    linked into an executable. Domain-local so sharded runners track
    allocations independently. *)

val enabled : unit -> bool
(** Tool configurations toggle tracking per run; disabled callbacks cost
    one branch. *)

val set_enabled : bool -> unit

val reset : unit -> unit

val track_alloc :
  t ->
  base:int ->
  bytes:int ->
  ty:Typedb.ty ->
  count:int ->
  space:Memsim.Space.t ->
  tag:string ->
  unit

val track_free : t -> base:int -> unit

val lookup : t -> addr:int -> info option
(** Resolve an interior pointer to its allocation record. *)

val type_at : t -> addr:int -> (Typedb.ty * int) option
(** TypeART's main query: element type at [addr] plus how many whole
    elements remain from that offset. *)

val extent_at : t -> addr:int -> int option
(** Remaining bytes from [addr] to the end of its allocation — what
    CuSan asks for to annotate a whole device-pointer range. *)

val stats : t -> int * int * int
(** [(tracked allocs, tracked frees, live entries)]. *)
