(* Type layouts and serialized type ids.

   TypeART's compiler pass extracts the memory layout of every allocated
   type at compile time and assigns it a unique id; the runtime later
   maps addresses back to (type id, dynamic element count). We model the
   same catalogue: built-in scalar types plus user-declared structs. *)

type ty =
  | F64
  | F32
  | I64
  | I32
  | I8
  | Struct of struct_decl

and struct_decl = { sname : string; fields : (string * ty) list }

let rec sizeof = function
  | F64 | I64 -> 8
  | F32 | I32 -> 4
  | I8 -> 1
  | Struct s -> List.fold_left (fun acc (_, t) -> acc + sizeof t) 0 s.fields

let rec to_string = function
  | F64 -> "f64"
  | F32 -> "f32"
  | I64 -> "i64"
  | I32 -> "i32"
  | I8 -> "i8"
  | Struct s ->
      Fmt.str "struct %s{%s}" s.sname
        (String.concat ";"
           (List.map (fun (n, t) -> n ^ ":" ^ to_string t) s.fields))

let pp = Fmt.of_to_string to_string

let rec equal a b =
  match (a, b) with
  | F64, F64 | F32, F32 | I64, I64 | I32, I32 | I8, I8 -> true
  | Struct x, Struct y ->
      x.sname = y.sname
      && List.length x.fields = List.length y.fields
      && List.for_all2
           (fun (n, t) (n', t') -> n = n' && equal t t')
           x.fields y.fields
  | _ -> false

(* Serialized type-id table, as emitted by the compiler pass. Ids are
   stable within a process: interning the serialized layout. The table
   is genuinely process-global (ids must agree across domains), so it is
   the one piece of shared state guarded by a mutex. *)

let intern_mutex = Mutex.create ()
let ids : (string, int) Hashtbl.t = Hashtbl.create 16
let by_id : (int, ty) Hashtbl.t = Hashtbl.create 16
let next_id = ref 0

let with_lock f =
  Mutex.lock intern_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock intern_mutex) f

let type_id ty =
  let key = to_string ty in
  with_lock (fun () ->
      match Hashtbl.find_opt ids key with
      | Some i -> i
      | None ->
          let i = !next_id in
          incr next_id;
          Hashtbl.replace ids key i;
          Hashtbl.replace by_id i ty;
          i)

let of_type_id i = with_lock (fun () -> Hashtbl.find_opt by_id i)
