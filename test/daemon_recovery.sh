#!/usr/bin/env bash
# Crash-recovery gate (`dune build @daemon`, the CI crash-recovery
# step): run cusand under its own supervisor with a durable state dir,
# serve real verdicts, kill -9 the daemon mid-flight, and prove the
# self-healing contract end-to-end:
#  - the supervisor restarts the dead daemon (capped backoff, fresh
#    pid) without operator help;
#  - the restarted daemon replays its journal: a verdict served before
#    the kill is re-served as a cache hit, byte-identical;
#  - a graceful SIGTERM afterwards still drains cleanly (exit 0).
# Every wait is a bounded retry-until-healthy loop over `cusanctl
# health` — no fixed sleeps. Artifacts (recovery-*.json/log and the
# journal itself) are left in the working directory; CI uploads them
# when the step fails.
set -u

cusand=${1:?usage: daemon_recovery.sh path/to/cusand.exe path/to/cusanctl.exe}
cusanctl=${2:?usage: daemon_recovery.sh path/to/cusand.exe path/to/cusanctl.exe}

sock="${TMPDIR:-/tmp}/cusand-recovery-$$.sock"
state="${TMPDIR:-/tmp}/cusand-recovery-state-$$"
pidfile="${TMPDIR:-/tmp}/cusand-recovery-$$.pid"
status=0

fail() {
  echo "daemon_recovery: $1" >&2
  status=1
}

wait_healthy() {
  local out=$1 tries=${2:-100}
  local i
  for ((i = 0; i < tries; i++)); do
    if "$cusanctl" --socket "$sock" --retries 1 health >"$out" 2>/dev/null; then
      return 0
    fi
    sleep 0.1
  done
  return 1
}

mkdir -p "$state"

"$cusand" --socket "$sock" --workers 2 --watchdog 2000000 \
  --state "$state" --supervise --pid-file "$pidfile" \
  --stats recovery-drain-stats.json \
  >recovery-stdout.json 2>recovery-supervisor.log &
sup_pid=$!

if ! wait_healthy recovery-health-boot.json; then
  fail "supervised daemon never became healthy"
fi
grep -q '"durable":true' recovery-health-boot.json \
  || fail "daemon does not report a durable cache"

# 1. Serve a verdict that must survive the crash.
if ! "$cusanctl" --socket "$sock" lint jacobi/jacobi >recovery-lint-before.json; then
  fail "lint before the kill failed"
fi
grep -q '"status":"ok"' recovery-lint-before.json || fail "lint reply not ok"
grep -q '"cached":false' recovery-lint-before.json \
  || fail "first lint unexpectedly cached"

# 2. kill -9 the daemon child mid-flight: occupy a worker with a wedge
#    (its client will lose the connection; that is the point), then
#    murder the child the supervisor is watching.
"$cusanctl" --socket "$sock" --retries 1 spin 30000000 \
  >recovery-spin.json 2>/dev/null &
spin_client=$!
child=$(cat "$pidfile" 2>/dev/null) || fail "pid file missing"
[ -n "${child:-}" ] || fail "pid file empty"
kill -9 "$child" 2>/dev/null || fail "could not kill daemon child $child"
wait "$spin_client" 2>/dev/null # the abandoned client; rc is irrelevant

# 3. The supervisor restarts it: a fresh child answers health again.
if ! wait_healthy recovery-health-after.json 200; then
  fail "daemon did not come back after kill -9"
fi
grep -q 'restart #1' recovery-supervisor.log \
  || fail "supervisor log records no restart"
newchild=$(cat "$pidfile" 2>/dev/null)
[ -n "${newchild:-}" ] && [ "$newchild" != "$child" ] \
  || fail "pid file was not rewritten for the restarted child"

# 4. The journal survived: the pre-kill verdict is a cache hit with
#    byte-identical result.
if ! "$cusanctl" --socket "$sock" lint jacobi/jacobi >recovery-lint-after.json; then
  fail "lint after recovery failed"
fi
grep -q '"cached":true' recovery-lint-after.json \
  || fail "recovered daemon did not serve the journalled verdict from cache"
before=$(sed 's/.*"result"://' recovery-lint-before.json)
after=$(sed 's/.*"result"://' recovery-lint-after.json)
[ -n "$before" ] && [ "$before" = "$after" ] \
  || fail "recovered verdict is not byte-identical"
[ -s "$state/cache.journal" ] || [ -s "$state/cache.snapshot" ] \
  || fail "state dir holds neither journal nor snapshot"

# 5. Graceful teardown still works after a crash cycle: SIGTERM the
#    supervisor, which forwards it and exits 0 once the child drains.
kill -TERM "$sup_pid"
wait "$sup_pid"
rc=$?
[ "$rc" -eq 0 ] || fail "supervisor exited $rc on SIGTERM, want 0"
grep -q 'drained cleanly' recovery-supervisor.log \
  || fail "supervisor did not log a clean drain"

# Keep the journal as an artifact for post-mortem debugging.
cp -f "$state/cache.journal" recovery-cache.journal 2>/dev/null || true
cp -f "$state/cache.snapshot" recovery-cache.snapshot 2>/dev/null || true
rm -rf "$state" "$pidfile"

if [ "$status" -eq 0 ]; then
  echo "daemon_recovery: kill -9 survived — supervisor restarted, journal replayed, verdict byte-identical, drained cleanly"
fi
exit "$status"
