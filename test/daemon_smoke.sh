#!/usr/bin/env bash
# Daemon smoke (`dune build @daemon`, the CI daemon step): start a real
# cusand, throw a healthy job, a deliberately crashing job, and a
# wedging job at it, and prove the robustness contract end-to-end:
#  - the crash is reaped into a post-mortem reply (saved as an
#    artifact), never taking the daemon down;
#  - the wedge resolves as a watchdog stalled verdict, not a hung
#    worker;
#  - a subscribe stream answers for the finished job (cusanctl watch);
#  - the daemon answers a follow-up health check after both;
#  - SIGTERM drains gracefully: the process exits 0 and flushes its
#    final stats JSON.
# Readiness is never a fixed sleep: every wait is a bounded
# retry-until-healthy loop over `cusanctl health`.
# Artifacts (daemon-*.json) are left in the working directory; CI
# uploads them when the step fails.
set -u

cusand=${1:?usage: daemon_smoke.sh path/to/cusand.exe path/to/cusanctl.exe}
cusanctl=${2:?usage: daemon_smoke.sh path/to/cusand.exe path/to/cusanctl.exe}

sock="${TMPDIR:-/tmp}/cusand-smoke-$$.sock"
status=0

fail() {
  echo "daemon_smoke: $1" >&2
  status=1
}

# Bounded retry-until-healthy: poll `cusanctl health` (itself cheap and
# retry-free enough under --retries 1) until the daemon answers, up to
# ~10s. Replaces any fixed sleep.
wait_healthy() {
  local out=$1 tries=${2:-100}
  local i
  for ((i = 0; i < tries; i++)); do
    if "$cusanctl" --socket "$sock" --retries 1 health >"$out" 2>/dev/null; then
      return 0
    fi
    sleep 0.1
  done
  return 1
}

"$cusand" --socket "$sock" --workers 2 --watchdog 2000000 \
  --stats daemon-drain-stats.json >daemon-stdout.json 2>daemon-stderr.log &
daemon_pid=$!

if ! wait_healthy daemon-health-boot.json; then
  fail "daemon never became healthy"
fi

# 1. A healthy lint job is served.
if ! "$cusanctl" --socket "$sock" lint jacobi/jacobi >daemon-lint.json; then
  fail "lint job failed"
fi
grep -q '"status":"ok"' daemon-lint.json || fail "lint reply not ok"

# 2. A deliberately crashing job is reaped into a post-mortem reply
#    (exit 1 by the cusanctl contract), and the daemon survives.
"$cusanctl" --socket "$sock" boom >daemon-post-mortem.json
rc=$?
[ "$rc" -eq 1 ] || fail "boom exited $rc, want 1 (crashed)"
grep -q '"post_mortem"' daemon-post-mortem.json \
  || fail "crashed job carries no post-mortem"

# 3. A wedging job spins until the step-budget watchdog fires and comes
#    back as a labelled stalled verdict.
if ! "$cusanctl" --socket "$sock" spin 1000000 >daemon-stalled.json; then
  fail "spin job failed"
fi
grep -q '"outcome":"stalled"' daemon-stalled.json \
  || fail "wedged job did not resolve as a stalled verdict"

# 4. The subscribe stream answers: watching the finished spin yields an
#    immediate terminal frame from the cache.
if ! "$cusanctl" --socket "$sock" watch spin 1000000 >daemon-watch.json; then
  fail "watch of a cached job failed"
fi
grep -q '"type":"end"' daemon-watch.json \
  || fail "watch produced no end frame"
grep -q '"status":"cached"' daemon-watch.json \
  || fail "watch of a finished job did not answer from the cache"

# 5. After a crash and a wedge, the daemon still answers.
if ! wait_healthy daemon-health-after.json 20; then
  fail "daemon unhealthy after crash + wedge"
fi
"$cusanctl" --socket "$sock" stats >daemon-stats.json \
  || fail "stats request failed"
grep -q '"crashed":1' daemon-stats.json || fail "crash not counted in stats"
grep -q '"stalled":1' daemon-stats.json || fail "stall not counted in stats"

# 6. SIGTERM drains gracefully: exit 0, final stats flushed.
kill -TERM "$daemon_pid"
wait "$daemon_pid"
rc=$?
[ "$rc" -eq 0 ] || fail "daemon exited $rc on SIGTERM, want 0"
grep -q '"event":"drained"' daemon-drain-stats.json \
  || fail "drain did not flush final stats"
[ -S "$sock" ] && fail "socket file not removed at drain"

if [ "$status" -eq 0 ]; then
  echo "daemon_smoke: lint + crash + wedge served, watch answered, drained cleanly"
fi
exit "$status"
