#!/usr/bin/env bash
# Resilience soak (`dune build @resilience`): the fault stability gate
# over 10 seeds with hard-failure plans armed. For every seed the whole
# correctness matrix runs sequentially and on 8 worker domains; both
# runs must classify every case correctly (exit 0) and their stdouts
# must be byte-identical — crash/drop plans may not erode scheduling
# determinism. The per-seed JSON verdict documents (post-mortems
# included) are left next to the outputs as resilience-seed<N>.json;
# CI uploads them when this script fails.
set -u

cutests=${1:?usage: soak.sh path/to/cutests.exe}
# A deterministic rank crash plus probabilistic drops and kernel
# crashes, so the seed genuinely changes which ranks die and where.
plan='mpi_recv@1#3:crash,mpi_send%0.1:drop,kernel_launch%0.05:crash'
status=0

for seed in 0 1 2 3 4 5 6 7 8 9; do
  # Only stdout is diffed: artifact notices go to stderr by contract.
  if ! "$cutests" --seed "$seed" -j 1 --faults "$plan" \
       --json "resilience-seed$seed.json" >"resilience-seed$seed-j1.out"
  then
    echo "soak: seed $seed failed the matrix at -j 1:" >&2
    tail -5 "resilience-seed$seed-j1.out" >&2
    status=1
  fi
  if ! "$cutests" --seed "$seed" -j 8 --faults "$plan" \
       >"resilience-seed$seed-j8.out"
  then
    echo "soak: seed $seed failed the matrix at -j 8:" >&2
    tail -5 "resilience-seed$seed-j8.out" >&2
    status=1
  fi
  if ! cmp -s "resilience-seed$seed-j1.out" "resilience-seed$seed-j8.out"; then
    echo "soak: seed $seed verdicts differ between -j 1 and -j 8:" >&2
    diff "resilience-seed$seed-j1.out" "resilience-seed$seed-j8.out" >&2 | head -20
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "soak: 10 seeds x {-j 1, -j 8}, all verdicts correct and byte-identical"
fi
exit "$status"
