(* Unit tests for the CUDA device simulator: stream FIFO order, legacy
   default-stream barriers (paper Fig. 3), events, eager/deferred
   execution, the memory-operation synchronization matrix, and hooks. *)

module Dev = Cudasim.Device
module Mem = Cudasim.Memory
module Sem = Cudasim.Semantics

let with_heap f =
  Memsim.Heap.reset ();
  Typeart.Rt.reset ();
  Fun.protect ~finally:(fun () -> Memsim.Heap.reset (); Typeart.Rt.reset ()) f

(* An op that appends its tag to a log when it executes. *)
let logger () =
  let log = ref [] in
  let mark tag = fun () -> log := tag :: !log in
  (log, mark)

let order log = List.rev !log

let enq dev stream tag mark = ignore (Dev.enqueue dev stream tag (mark tag))

(* --- ordering ------------------------------------------------------------ *)

let eager_executes_immediately () =
  let dev = Dev.create ~mode:Dev.Eager () in
  let log, mark = logger () in
  enq dev (Dev.default_stream dev) "a" mark;
  Alcotest.(check (list string)) "ran" [ "a" ] (order log)

let deferred_waits_for_sync () =
  let dev = Dev.create ~mode:Dev.Deferred () in
  let log, mark = logger () in
  enq dev (Dev.default_stream dev) "a" mark;
  Alcotest.(check (list string)) "pending" [] (order log);
  Dev.device_synchronize dev;
  Alcotest.(check (list string)) "ran" [ "a" ] (order log)

let stream_fifo () =
  let dev = Dev.create ~mode:Dev.Deferred () in
  let log, mark = logger () in
  let s = Dev.stream_create dev in
  List.iter (fun t -> enq dev s t mark) [ "1"; "2"; "3" ];
  Dev.stream_synchronize dev s;
  Alcotest.(check (list string)) "FIFO" [ "1"; "2"; "3" ] (order log)

let streams_independent () =
  let dev = Dev.create ~mode:Dev.Deferred () in
  let log, mark = logger () in
  let a = Dev.stream_create ~flags:Dev.Non_blocking dev in
  let b = Dev.stream_create ~flags:Dev.Non_blocking dev in
  enq dev a "a1" mark;
  enq dev b "b1" mark;
  Dev.stream_synchronize dev b;
  Alcotest.(check (list string)) "only b ran" [ "b1" ] (order log);
  Dev.stream_synchronize dev a;
  Alcotest.(check (list string)) "then a" [ "b1"; "a1" ] (order log)

(* Fig. 3: K1 on stream 1, K0 on default, K2 on stream 2.
   K0 waits on K1; K2 waits on K0. Syncing stream 2 runs all three. *)
let legacy_barrier_fig3 () =
  let dev = Dev.create ~mode:Dev.Deferred () in
  let log, mark = logger () in
  let s1 = Dev.stream_create dev and s2 = Dev.stream_create dev in
  enq dev s1 "K1" mark;
  enq dev (Dev.default_stream dev) "K0" mark;
  enq dev s2 "K2" mark;
  Dev.stream_synchronize dev s2;
  Alcotest.(check (list string)) "K1 before K0 before K2" [ "K1"; "K0"; "K2" ]
    (order log)

let legacy_default_waits_blocking_streams () =
  let dev = Dev.create ~mode:Dev.Deferred () in
  let log, mark = logger () in
  let s = Dev.stream_create dev in
  enq dev s "user" mark;
  enq dev (Dev.default_stream dev) "def" mark;
  Dev.stream_synchronize dev (Dev.default_stream dev);
  Alcotest.(check (list string)) "user first" [ "user"; "def" ] (order log)

let nonblocking_exempt_from_barrier () =
  let dev = Dev.create ~mode:Dev.Deferred () in
  let log, mark = logger () in
  let s = Dev.stream_create ~flags:Dev.Non_blocking dev in
  enq dev s "nb" mark;
  enq dev (Dev.default_stream dev) "def" mark;
  Dev.stream_synchronize dev (Dev.default_stream dev);
  Alcotest.(check (list string)) "default does not wait for non-blocking"
    [ "def" ] (order log)

let blocking_stream_waits_for_default () =
  let dev = Dev.create ~mode:Dev.Deferred () in
  let log, mark = logger () in
  let s = Dev.stream_create dev in
  enq dev (Dev.default_stream dev) "def" mark;
  enq dev s "user" mark;
  Dev.stream_synchronize dev s;
  Alcotest.(check (list string)) "default first" [ "def"; "user" ] (order log)

(* --- events ---------------------------------------------------------------- *)

let event_sync_runs_prefix () =
  let dev = Dev.create ~mode:Dev.Deferred () in
  let log, mark = logger () in
  let s = Dev.stream_create ~flags:Dev.Non_blocking dev in
  enq dev s "before" mark;
  let e = Dev.event_create dev in
  Dev.event_record dev e s;
  enq dev s "after" mark;
  Dev.event_synchronize dev e;
  Alcotest.(check (list string)) "prefix only" [ "before" ] (order log)

let event_never_recorded_is_complete () =
  let dev = Dev.create ~mode:Dev.Deferred () in
  let e = Dev.event_create dev in
  Alcotest.(check bool) "query true" true (Dev.event_query dev e);
  Dev.event_synchronize dev e (* returns immediately, no crash *)

let stream_wait_event_orders () =
  let dev = Dev.create ~mode:Dev.Deferred () in
  let log, mark = logger () in
  let a = Dev.stream_create ~flags:Dev.Non_blocking dev in
  let b = Dev.stream_create ~flags:Dev.Non_blocking dev in
  enq dev a "a1" mark;
  let e = Dev.event_create dev in
  Dev.event_record dev e a;
  Dev.stream_wait_event dev b e;
  enq dev b "b1" mark;
  Dev.stream_synchronize dev b;
  Alcotest.(check (list string)) "a1 forced by b's wait" [ "a1"; "b1" ] (order log)

let query_ticks_deferred () =
  let dev = Dev.create ~mode:Dev.Deferred () in
  let log, mark = logger () in
  let s = Dev.stream_create dev in
  enq dev s "x" mark;
  enq dev s "y" mark;
  (* busy-wait terminates because each query makes progress *)
  let guard = ref 0 in
  while (not (Dev.stream_query dev s)) && !guard < 100 do
    incr guard
  done;
  Alcotest.(check bool) "completed" true (Dev.stream_query dev s);
  Alcotest.(check (list string)) "all ran" [ "x"; "y" ] (order log)

let query_eager_true () =
  let dev = Dev.create ~mode:Dev.Eager () in
  let _log, mark = logger () in
  let s = Dev.stream_create dev in
  enq dev s "x" mark;
  Alcotest.(check bool) "immediately done" true (Dev.stream_query dev s)

(* --- stream lifecycle ------------------------------------------------------- *)

let destroy_forces_and_blocks_reuse () =
  let dev = Dev.create ~mode:Dev.Deferred () in
  let log, mark = logger () in
  let s = Dev.stream_create dev in
  enq dev s "x" mark;
  Dev.stream_destroy dev s;
  Alcotest.(check (list string)) "forced" [ "x" ] (order log);
  match Dev.enqueue dev s "y" (mark "y") with
  | _ -> Alcotest.fail "enqueue on destroyed stream"
  | exception Dev.Stream_destroyed -> ()

let default_stream_indestructible () =
  let dev = Dev.create () in
  match Dev.stream_destroy dev (Dev.default_stream dev) with
  | () -> Alcotest.fail "destroyed default stream"
  | exception Invalid_argument _ -> ()

(* --- memory operations ------------------------------------------------------- *)

let memcpy_d2h_blocking () =
  with_heap @@ fun () ->
  let dev = Dev.create ~mode:Dev.Deferred () in
  let d = Mem.cuda_malloc dev ~ty:Typeart.Typedb.F64 ~count:4 in
  let h = Mem.host_malloc ~ty:Typeart.Typedb.F64 ~count:4 () in
  Memsim.Access.raw_set_f64 d 2 42.;
  Mem.memcpy dev ~dst:h ~src:d ~bytes:32 ();
  (* blocking: data visible immediately, even in deferred mode *)
  Alcotest.(check (float 0.)) "copied" 42. (Memsim.Access.raw_get_f64 h 2)

let memcpy_d2d_not_blocking () =
  with_heap @@ fun () ->
  let dev = Dev.create ~mode:Dev.Deferred () in
  let a = Mem.cuda_malloc dev ~ty:Typeart.Typedb.F64 ~count:4 in
  let b = Mem.cuda_malloc dev ~ty:Typeart.Typedb.F64 ~count:4 in
  Memsim.Access.raw_set_f64 a 0 7.;
  Mem.memcpy dev ~dst:b ~src:a ~bytes:32 ();
  Alcotest.(check (float 0.)) "not yet" 0. (Memsim.Access.raw_get_f64 b 0);
  Dev.device_synchronize dev;
  Alcotest.(check (float 0.)) "after sync" 7. (Memsim.Access.raw_get_f64 b 0)

let memcpy_async_pageable_blocks () =
  (* The hidden behaviour: async copies involving pageable host memory
     are effectively synchronous on real hardware. *)
  with_heap @@ fun () ->
  let dev = Dev.create ~mode:Dev.Deferred () in
  let d = Mem.cuda_malloc dev ~ty:Typeart.Typedb.F64 ~count:4 in
  let h = Mem.host_malloc ~ty:Typeart.Typedb.F64 ~count:4 () in
  Memsim.Access.raw_set_f64 d 1 5.;
  Mem.memcpy dev ~dst:h ~src:d ~bytes:32 ~async:true ();
  Alcotest.(check (float 0.)) "actually blocked" 5. (Memsim.Access.raw_get_f64 h 1);
  (* ...but the race-detection model treats it as NOT synchronizing *)
  Alcotest.(check bool) "modeled as async" false
    (Sem.modeled_memcpy_syncs ~src:Memsim.Space.Device
       ~dst:Memsim.Space.Host_pageable ~async:true)

let memcpy_async_pinned_does_not_block () =
  with_heap @@ fun () ->
  let dev = Dev.create ~mode:Dev.Deferred () in
  let d = Mem.cuda_malloc dev ~ty:Typeart.Typedb.F64 ~count:4 in
  let h = Mem.cuda_host_alloc dev ~ty:Typeart.Typedb.F64 ~count:4 in
  Memsim.Access.raw_set_f64 d 1 5.;
  Mem.memcpy dev ~dst:h ~src:d ~bytes:32 ~async:true ();
  Alcotest.(check (float 0.)) "still stale" 0. (Memsim.Access.raw_get_f64 h 1);
  Dev.device_synchronize dev;
  Alcotest.(check (float 0.)) "after sync" 5. (Memsim.Access.raw_get_f64 h 1)

let memset_device_async_wrt_host () =
  with_heap @@ fun () ->
  let dev = Dev.create ~mode:Dev.Deferred () in
  let d = Mem.cuda_malloc dev ~ty:Typeart.Typedb.F64 ~count:4 in
  Mem.memset dev ~dst:d ~bytes:32 ~value:0xff ();
  Alcotest.(check bool) "not yet" true (Memsim.Access.raw_get_f64 d 0 = 0.);
  Dev.device_synchronize dev;
  Alcotest.(check bool) "set" true (Memsim.Access.raw_get_f64 d 0 <> 0.)

let memset_pinned_blocks () =
  with_heap @@ fun () ->
  let dev = Dev.create ~mode:Dev.Deferred () in
  let h = Mem.cuda_host_alloc dev ~ty:Typeart.Typedb.F64 ~count:4 in
  Mem.memset dev ~dst:h ~bytes:32 ~value:0xff ();
  Alcotest.(check bool) "pinned memset synchronous" true
    (Memsim.Access.raw_get_f64 h 0 <> 0.)

let free_synchronizes_device () =
  with_heap @@ fun () ->
  let dev = Dev.create ~mode:Dev.Deferred () in
  let log, mark = logger () in
  let s = Dev.stream_create dev in
  enq dev s "pending" mark;
  let scratch = Mem.cuda_malloc dev ~ty:Typeart.Typedb.F64 ~count:1 in
  Mem.free dev scratch;
  Alcotest.(check (list string)) "free forced the device" [ "pending" ] (order log)

let free_async_is_stream_ordered () =
  with_heap @@ fun () ->
  let dev = Dev.create ~mode:Dev.Deferred () in
  let s = Dev.stream_create dev in
  let buf = Mem.cuda_malloc dev ~ty:Typeart.Typedb.F64 ~count:4 in
  Mem.free_async dev s buf;
  Alcotest.(check bool) "still live" true (not buf.Memsim.Ptr.alloc.Memsim.Alloc.freed);
  Dev.stream_synchronize dev s;
  Alcotest.(check bool) "freed at sync" true buf.Memsim.Ptr.alloc.Memsim.Alloc.freed

(* --- kernel launch ------------------------------------------------------------ *)

let launch_rejects_host_pointer () =
  with_heap @@ fun () ->
  let dev = Dev.create () in
  let h = Mem.host_malloc ~ty:Typeart.Typedb.F64 ~count:4 () in
  let k =
    Cudasim.Kernel.make
      ~kir:
        Kir.Dsl.(modul ~kernels:[ "k" ] [ func "k" [ ptr "a" ] [] ], "k")
      "k"
  in
  match Dev.launch dev k ~grid:1 ~args:[| VPtr h |] () with
  | () -> Alcotest.fail "host pointer accepted"
  | exception Dev.Invalid_launch _ -> ()

let launch_rejects_empty_grid () =
  let dev = Dev.create () in
  let k =
    Cudasim.Kernel.make
      ~kir:Kir.Dsl.(modul ~kernels:[ "k" ] [ func "k" [] [] ], "k")
      "k"
  in
  match Dev.launch dev k ~grid:0 ~args:[||] () with
  | () -> Alcotest.fail "zero grid accepted"
  | exception Dev.Invalid_launch _ -> ()

let kernel_needs_impl () =
  match Cudasim.Kernel.make "ghost" with
  | _ -> Alcotest.fail "kernel without IR or native accepted"
  | exception Invalid_argument _ -> ()

let launch_executes_kir () =
  with_heap @@ fun () ->
  let dev = Dev.create () in
  let d = Mem.cuda_malloc dev ~ty:Typeart.Typedb.F64 ~count:8 in
  let k =
    Cudasim.Kernel.make
      ~kir:
        Kir.Dsl.(
          ( modul ~kernels:[ "fill" ]
              [ func "fill" [ ptr "a" ] [ store (p 0) tid (i2f tid) ] ],
            "fill" ))
      "fill"
  in
  Dev.launch dev k ~grid:8 ~args:[| VPtr d |] ();
  Dev.device_synchronize dev;
  Alcotest.(check (float 0.)) "filled" 5. (Memsim.Access.raw_get_f64 d 5)

(* --- hooks and accounting ------------------------------------------------------ *)

let hooks_see_launches () =
  with_heap @@ fun () ->
  let dev = Dev.create () in
  let seen = ref [] in
  Dev.add_hook dev (fun phase ev ->
      match (phase, ev) with
      | Dev.Pre, Dev.Kernel_launch { kernel; _ } ->
          seen := kernel.Cudasim.Kernel.kname :: !seen
      | _ -> ());
  let d = Mem.cuda_malloc dev ~ty:Typeart.Typedb.F64 ~count:1 in
  let k =
    Cudasim.Kernel.make
      ~kir:Kir.Dsl.(modul ~kernels:[ "k" ] [ func "k" [ ptr "a" ] [] ], "k")
      "k"
  in
  Dev.launch dev k ~grid:1 ~args:[| VPtr d |] ();
  Alcotest.(check (list string)) "intercepted" [ "k" ] !seen

let malloc_tracked_by_typeart () =
  with_heap @@ fun () ->
  Typeart.Rt.set_enabled true;
  let dev = Dev.create () in
  let d = Mem.cuda_malloc dev ~ty:Typeart.Typedb.F64 ~count:16 in
  (match Typeart.Pass.type_at (Memsim.Ptr.addr d) with
  | Some (ty, count) ->
      Alcotest.(check bool) "type" true (Typeart.Typedb.equal ty Typeart.Typedb.F64);
      Alcotest.(check int) "count" 16 count
  | None -> Alcotest.fail "not tracked");
  Typeart.Rt.set_enabled false

let cost_model_accumulates () =
  with_heap @@ fun () ->
  let dev = Dev.create () in
  let d = Mem.cuda_malloc dev ~ty:Typeart.Typedb.F64 ~count:1024 in
  let h = Mem.host_malloc ~ty:Typeart.Typedb.F64 ~count:1024 () in
  Mem.memcpy dev ~dst:h ~src:d ~bytes:8192 ();
  let _, virt = Dev.timing dev in
  Alcotest.(check bool) "virtual time charged" true (virt > 0.);
  Alcotest.(check bool) "pcie slower than on-device" true
    (Cudasim.Costmodel.memcpy ~src:Memsim.Space.Device
       ~dst:Memsim.Space.Host_pageable ~bytes:1048576
    > Cudasim.Costmodel.memcpy ~src:Memsim.Space.Device ~dst:Memsim.Space.Device
        ~bytes:1048576)

let host_func_stream_ordered () =
  let dev = Dev.create ~mode:Dev.Deferred () in
  let log, mark = logger () in
  let s = Dev.stream_create dev in
  enq dev s "k1" mark;
  Dev.launch_host_func dev s ~label:"cb" (mark "cb");
  enq dev s "k2" mark;
  Dev.stream_synchronize dev s;
  Alcotest.(check (list string)) "callback between stream ops"
    [ "k1"; "cb"; "k2" ] (order log)

let event_elapsed_time () =
  with_heap @@ fun () ->
  let dev = Dev.create ~mode:Dev.Deferred () in
  let s = Dev.stream_create dev in
  let e1 = Dev.event_create dev in
  Dev.event_record dev e1 s;
  let d = Mem.cuda_malloc dev ~ty:Typeart.Typedb.F64 ~count:131072 in
  Mem.memset dev ~dst:d ~bytes:(131072 * 8) ~value:0 ~stream:s ~async:true ();
  let e2 = Dev.event_create dev in
  Dev.event_record dev e2 s;
  let ms = Dev.event_elapsed_time dev e1 e2 in
  Alcotest.(check bool) "positive elapsed" true (ms > 0.);
  match Dev.event_elapsed_time dev e1 (Dev.event_create dev) with
  | _ -> Alcotest.fail "unrecorded event accepted"
  | exception Invalid_argument _ -> ()

let semantics_matrix () =
  let open Memsim.Space in
  (* cudaMemcpy sync variant *)
  Alcotest.(check bool) "H2D blocks" true
    (Sem.actual_memcpy_blocks ~src:Host_pageable ~dst:Device ~async:false);
  Alcotest.(check bool) "D2D does not block" false
    (Sem.actual_memcpy_blocks ~src:Device ~dst:Device ~async:false);
  Alcotest.(check bool) "D2H modeled sync" true
    (Sem.modeled_memcpy_syncs ~src:Device ~dst:Host_pageable ~async:false);
  Alcotest.(check bool) "D2D not modeled sync" false
    (Sem.modeled_memcpy_syncs ~src:Device ~dst:Device ~async:false);
  (* async *)
  Alcotest.(check bool) "async pinned does not block" false
    (Sem.actual_memcpy_blocks ~src:Device ~dst:Host_pinned ~async:true);
  Alcotest.(check bool) "async pageable actually blocks" true
    (Sem.actual_memcpy_blocks ~src:Device ~dst:Host_pageable ~async:true);
  Alcotest.(check bool) "async never modeled sync" false
    (Sem.modeled_memcpy_syncs ~src:Device ~dst:Host_pageable ~async:true);
  (* memset *)
  Alcotest.(check bool) "memset pinned syncs" true
    (Sem.modeled_memset_syncs ~dst:Host_pinned ~async:false);
  Alcotest.(check bool) "memset pageable does not" false
    (Sem.modeled_memset_syncs ~dst:Host_pageable ~async:false);
  Alcotest.(check bool) "memset device does not" false
    (Sem.modeled_memset_syncs ~dst:Device ~async:false);
  Alcotest.(check bool) "memsetAsync never" false
    (Sem.modeled_memset_syncs ~dst:Host_pinned ~async:true);
  (* free *)
  Alcotest.(check bool) "free syncs device" true (Sem.free_syncs_device ~async:false);
  Alcotest.(check bool) "freeAsync does not" false (Sem.free_syncs_device ~async:true)

(* Property: for a random DAG of enqueues across streams, forcing any
   op runs its transitive dependencies first, and device_synchronize
   runs everything exactly once. *)
let prop_dag_execution =
  QCheck.Test.make ~name:"deferred DAG executes each op once, deps first"
    ~count:200
    QCheck.(list_of_size Gen.(1 -- 30) (int_range 0 3))
    (fun choices ->
      let dev = Dev.create ~mode:Dev.Deferred () in
      let streams =
        [|
          Dev.default_stream dev;
          Dev.stream_create dev;
          Dev.stream_create ~flags:Dev.Non_blocking dev;
          Dev.stream_create dev;
        |]
      in
      let ran = ref [] in
      List.iteri
        (fun i c ->
          ignore
            (Dev.enqueue dev streams.(c) (string_of_int i) (fun () ->
                 ran := i :: !ran)))
        choices;
      Dev.device_synchronize dev;
      Dev.device_synchronize dev (* idempotent *);
      let ran = List.rev !ran in
      (* every op ran exactly once *)
      List.sort compare ran = List.init (List.length choices) Fun.id
      &&
      (* same-stream ops ran in enqueue order *)
      let pos = Array.make (List.length choices) 0 in
      List.iteri (fun idx op -> pos.(op) <- idx) ran;
      List.for_all
        (fun (i, j) -> pos.(i) < pos.(j))
        (let rec pairs i = function
           | [] -> []
           | c :: rest ->
               let same =
                 List.mapi (fun k c' -> (i + 1 + k, c')) rest
                 |> List.filter (fun (_, c') -> c' = c)
                 |> List.map (fun (j, _) -> (i, j))
               in
               same @ pairs (i + 1) rest
         in
         pairs 0 choices))

let tests =
  [
    Alcotest.test_case "eager executes immediately" `Quick
      eager_executes_immediately;
    Alcotest.test_case "deferred waits for sync" `Quick deferred_waits_for_sync;
    Alcotest.test_case "stream FIFO" `Quick stream_fifo;
    Alcotest.test_case "streams independent" `Quick streams_independent;
    Alcotest.test_case "legacy barrier (Fig. 3)" `Quick legacy_barrier_fig3;
    Alcotest.test_case "default waits blocking streams" `Quick
      legacy_default_waits_blocking_streams;
    Alcotest.test_case "non-blocking exempt" `Quick nonblocking_exempt_from_barrier;
    Alcotest.test_case "blocking stream waits default" `Quick
      blocking_stream_waits_for_default;
    Alcotest.test_case "event sync runs prefix" `Quick event_sync_runs_prefix;
    Alcotest.test_case "unrecorded event complete" `Quick
      event_never_recorded_is_complete;
    Alcotest.test_case "stream_wait_event orders" `Quick stream_wait_event_orders;
    Alcotest.test_case "query ticks deferred device" `Quick query_ticks_deferred;
    Alcotest.test_case "query true in eager" `Quick query_eager_true;
    Alcotest.test_case "destroy forces, blocks reuse" `Quick
      destroy_forces_and_blocks_reuse;
    Alcotest.test_case "default stream indestructible" `Quick
      default_stream_indestructible;
    Alcotest.test_case "memcpy D2H blocking" `Quick memcpy_d2h_blocking;
    Alcotest.test_case "memcpy D2D not blocking" `Quick memcpy_d2d_not_blocking;
    Alcotest.test_case "memcpyAsync pageable blocks (hidden)" `Quick
      memcpy_async_pageable_blocks;
    Alcotest.test_case "memcpyAsync pinned does not block" `Quick
      memcpy_async_pinned_does_not_block;
    Alcotest.test_case "memset device async wrt host" `Quick
      memset_device_async_wrt_host;
    Alcotest.test_case "memset pinned blocks" `Quick memset_pinned_blocks;
    Alcotest.test_case "free synchronizes device" `Quick free_synchronizes_device;
    Alcotest.test_case "freeAsync stream-ordered" `Quick
      free_async_is_stream_ordered;
    Alcotest.test_case "launch rejects host pointer" `Quick
      launch_rejects_host_pointer;
    Alcotest.test_case "launch rejects empty grid" `Quick launch_rejects_empty_grid;
    Alcotest.test_case "kernel needs an implementation" `Quick kernel_needs_impl;
    Alcotest.test_case "launch executes KIR" `Quick launch_executes_kir;
    Alcotest.test_case "hooks see launches" `Quick hooks_see_launches;
    Alcotest.test_case "malloc tracked by TypeART" `Quick malloc_tracked_by_typeart;
    Alcotest.test_case "cost model accumulates" `Quick cost_model_accumulates;
    Alcotest.test_case "hostFunc stream-ordered" `Quick host_func_stream_ordered;
    Alcotest.test_case "event elapsed time" `Quick event_elapsed_time;
    Alcotest.test_case "semantics matrix" `Quick semantics_matrix;
    QCheck_alcotest.to_alcotest prop_dag_execution;
  ]

let () = Alcotest.run "cudasim" [ ("cudasim", tests) ]
