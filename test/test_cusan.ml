(* Tests for CuSan's compiler pass (kernel access analysis, Fig. 8 of
   the paper) and runtime annotation recipe. The central property test
   generates random kernels and checks that the static analysis
   over-approximates the interpreter's actual access footprint. *)

module KA = Cusan.Kernel_analysis
module K = Cudasim.Kernel
module Dev = Cudasim.Device
module T = Tsan.Detector

let summary m entry =
  Array.map
    (fun a ->
      match a with
      | None -> `Scalar
      | Some ({ KA.reads; writes } : KA.access) -> (
          match (reads, writes) with
          | false, false -> `None
          | true, false -> `R
          | false, true -> `W
          | true, true -> `RW))
    (KA.analyze m ~entry)

let check_summary name m entry expect =
  let got = summary m entry in
  Alcotest.(check int) (name ^ " arity") (Array.length expect) (Array.length got);
  Array.iteri
    (fun i e ->
      let s = function
        | `Scalar -> "scalar" | `None -> "none" | `R -> "r" | `W -> "w" | `RW -> "rw"
      in
      Alcotest.(check string) (Printf.sprintf "%s arg %d" name i) (s e) (s got.(i)))
    expect

(* The paper's Fig. 8: d_a flows into a nested call's written param,
   d_b into a read param. *)
let fig8_nested_call () =
  let m =
    Kir.Dsl.(
      modul ~kernels:[ "kernel" ]
        [
          func "kernel_nested"
            [ ptr "y"; ptr "x"; scalar "t" ]
            [ store (p 0) (p 2) (load (p 1) (p 2)) ];
          func "kernel" [ ptr "d_a"; ptr "d_b" ]
            [ call "kernel_nested" [ p 0; p 1; tid ] ];
        ])
  in
  check_summary "fig8" m "kernel" [| `W; `R |];
  check_summary "fig8 nested" m "kernel_nested" [| `W; `R; `Scalar |]

let direct_load_store () =
  let m =
    Kir.Dsl.(
      modul ~kernels:[ "k" ]
        [ func "k" [ ptr "a"; ptr "b" ] [ store (p 0) tid (load (p 1) tid) ] ])
  in
  check_summary "direct" m "k" [| `W; `R |]

let read_modify_write () =
  let m =
    Kir.Dsl.(
      modul ~kernels:[ "k" ]
        [ func "k" [ ptr "a" ] [ store (p 0) tid (load (p 0) tid +. f 1.) ] ])
  in
  check_summary "rmw" m "k" [| `RW |]

let untouched_pointer () =
  let m = Kir.Dsl.(modul ~kernels:[ "k" ] [ func "k" [ ptr "a"; ptr "b" ] [ store (p 0) tid (f 0.) ] ]) in
  check_summary "untouched" m "k" [| `W; `None |]

let alias_through_let () =
  let m =
    Kir.Dsl.(
      modul ~kernels:[ "k" ]
        [
          func "k" [ ptr "a" ]
            [ let_ "q" (p 0 +@ i 4); store (v "q") tid (f 1.) ];
        ])
  in
  check_summary "alias" m "k" [| `W |]

let alias_joins_branch_bindings () =
  (* %q may point to a or b depending on the branch: both get marked. *)
  let m =
    Kir.Dsl.(
      modul ~kernels:[ "k" ]
        [
          func "k"
            [ ptr "a"; ptr "b"; scalar "c" ]
            [
              let_ "q" (p 0);
              if_ (p 2) [ let_ "q" (p 1) ] [];
              store (v "q") tid (f 1.);
            ];
        ])
  in
  check_summary "branch alias" m "k" [| `W; `W; `Scalar |]

let access_under_loop_and_if () =
  let m =
    Kir.Dsl.(
      modul ~kernels:[ "k" ]
        [
          func "k"
            [ ptr "a"; scalar "n" ]
            [
              for_ "i" (i 0) (p 1)
                [ if_ (v "i" <. i 3) [ store (p 0) (v "i") (f 0.) ] [] ];
            ];
        ])
  in
  check_summary "loop+if" m "k" [| `W; `Scalar |]

let index_loads_count_as_reads () =
  let m =
    Kir.Dsl.(
      modul ~kernels:[ "k" ]
        [
          func "k" [ ptr "a"; ptr "idx" ]
            [ store (p 0) (f2i (load (p 1) tid)) (f 1.) ];
        ])
  in
  check_summary "index load" m "k" [| `W; `R |]

let recursion_conservative () =
  let m =
    Kir.Dsl.(
      modul ~kernels:[ "k" ]
        [
          func "k" [ ptr "a" ] [ call "k" [ p 0 ] ];
        ])
  in
  match summary m "k" with
  | [| `RW |] | [| `None |] ->
      (* must be sound; RW is what the conservative fallback gives *)
      ()
  | got ->
      Alcotest.failf "recursion: unexpected %d-ary result %s" (Array.length got)
        (match got.(0) with `R -> "r" | `W -> "w" | _ -> "?")

let mutual_recursion_fixpoint () =
  (* f writes its first argument and recurses through g, which reads
     its second: the summary fixpoint must converge to exactly W/R for
     both — a cycle bail-out would degrade everything to RW. *)
  let m =
    Kir.Dsl.(
      modul ~kernels:[ "f" ]
        [
          func "f" [ ptr "a"; ptr "b" ]
            [ store (p 0) (i 0) (f 1.); call "g" [ p 0; p 1 ] ];
          func "g" [ ptr "x"; ptr "y" ]
            [ let_ "t" (load (p 1) (i 0)); call "f" [ p 0; p 1 ] ];
        ])
  in
  check_summary "mutual recursion f" m "f" [| `W; `R |];
  check_summary "mutual recursion g" m "g" [| `W; `R |]

let two_level_call_chain () =
  let m =
    Kir.Dsl.(
      modul ~kernels:[ "top" ]
        [
          func "leaf" [ ptr "x" ] [ store (p 0) (i 0) (f 1.) ];
          func "mid" [ ptr "y" ] [ call "leaf" [ p 0 ] ];
          func "top" [ ptr "z"; ptr "w" ]
            [ call "mid" [ p 0 ]; let_ "r" (load (p 1) (i 0)) ];
        ])
  in
  check_summary "chain" m "top" [| `W; `R |]

let instrument_sets_access () =
  let k =
    K.make
      ~kir:
        Kir.Dsl.(
          ( modul ~kernels:[ "k" ]
              [ func "k" [ ptr "a"; scalar "n" ] [ store (p 0) tid (f 1.) ] ],
            "k" ))
      "k"
  in
  Alcotest.(check bool) "unanalyzed" true (k.K.access = None);
  Cusan.Pass.instrument_kernel k;
  match k.K.access with
  | Some [| Some K.W; None |] -> ()
  | _ -> Alcotest.fail "wrong instrumentation result"

let instrument_rejects_invalid_ir () =
  let k =
    K.make
      ~kir:
        Kir.Dsl.(
          (modul ~kernels:[ "k" ] [ func "k" [ ptr "a" ] [ call "ghost" [] ] ], "k"))
      "k"
  in
  match Cusan.Pass.instrument_kernel k with
  | () -> Alcotest.fail "invalid IR instrumented"
  | exception Kir.Validate.Invalid _ -> ()

(* --- property: analysis over-approximates real footprints -------------- *)

(* Random kernel generator: params [a: ptr(8 elems); b: ptr(8); n: scalar],
   body of random stores/loads/lets/loops/ifs/calls into a fixed helper. *)
let gen_body =
  let open QCheck.Gen in
  let ptr_expr = oneofl Kir.Dsl.[ p 0; p 1; v "q" ] in
  let idx = oneofl Kir.Dsl.[ tid %. i 8; i 0; i 7; v "j" ] in
  let scalar_expr =
    oneofl Kir.Dsl.[ f 1.; i2f tid; i 3 ]
  in
  let leaf_stmt =
    oneof
      [
        (let* p = ptr_expr and* ix = idx and* v = scalar_expr in
         return (Kir.Dsl.store p ix v));
        (let* p = ptr_expr and* ix = idx in
         return (Kir.Dsl.let_ "s" (Kir.Dsl.load p ix)));
        (let* p = ptr_expr in
         return (Kir.Dsl.let_ "q" p));
        (let* p = ptr_expr and* ix = idx in
         return (Kir.Dsl.call "helper" [ p; ix ]));
      ]
  in
  let rec stmts depth n =
    if n <= 0 then return []
    else
      let* s =
        if depth <= 0 then leaf_stmt
        else
          frequency
            [
              (4, leaf_stmt);
              ( 1,
                let* c = oneofl Kir.Dsl.[ tid <. i 4; i 1; i 0 ]
                and* t = stmts (depth - 1) 2
                and* e = stmts (depth - 1) 2 in
                return (Kir.Dsl.if_ c t e) );
              ( 1,
                let* b = stmts (depth - 1) 2 in
                return (Kir.Dsl.for_ "j" (Kir.Dsl.i 0) (Kir.Dsl.i 3) b) );
            ]
      in
      let* rest = stmts depth (n - 1) in
      return (s :: rest)
  in
  stmts 2 5

let helper_variants =
  (* the helper randomly reads or writes its pointer *)
  Kir.Dsl.
    [
      func "helper" [ ptr "x"; scalar "i" ] [ store (p 0) (p 1 %. i 8) (f 2.) ];
      func "helper" [ ptr "x"; scalar "i" ] [ let_ "t" (load (p 0) (p 1 %. i 8)) ];
    ]

let mk_module helper body =
  Kir.Dsl.(
    modul ~kernels:[ "k" ]
      [
        helper;
        func "k"
          [ ptr "a"; ptr "b"; scalar "n" ]
          (let_ "q" (p 0) :: let_ "j" (i 0) :: let_ "s" (f 0.) :: body);
      ])

let prop_analysis_overapproximates =
  QCheck.Test.make ~name:"analysis over-approximates interpreter footprint"
    ~count:300
    QCheck.(
      make
        ~print:(fun (h, body) ->
          Fmt.str "%a" Kir.Ir.pp_func
            (match (mk_module (List.nth helper_variants h) body).Kir.Ir.funcs with
            | [ _; k ] -> k
            | _ -> assert false))
        Gen.(pair (0 -- 1) gen_body))
    (fun (h, body) ->
      let m = mk_module (List.nth helper_variants h) body in
      Kir.Validate.check_module m;
      let s = KA.analyze m ~entry:"k" in
      (* run and record the real footprint per argument *)
      Memsim.Heap.reset ();
      let a = Memsim.Heap.alloc Memsim.Space.Device 64 in
      let b = Memsim.Heap.alloc Memsim.Space.Device 64 in
      let touched_r = [| false; false |] and touched_w = [| false; false |] in
      let classify ptr =
        if Memsim.Ptr.addr ptr >= Memsim.Ptr.addr b then 1 else 0
      in
      let tracer =
        {
          Kir.Interp.on_read = (fun p ~bytes:_ -> touched_r.(classify p) <- true);
          on_write = (fun p ~bytes:_ -> touched_w.(classify p) <- true);
        }
      in
      Kir.Interp.run_kernel ~tracer m ~name:"k"
        ~args:[| VPtr a; VPtr b; VInt 8 |] ~grid:4;
      Memsim.Heap.reset ();
      let sound i =
        match s.(i) with
        | None -> (not touched_r.(i)) && not touched_w.(i)
        | Some ({ KA.reads; writes } : KA.access) ->
            ((not touched_r.(i)) || reads) && ((not touched_w.(i)) || writes)
      in
      sound 0 && sound 1)

(* --- runtime annotation unit tests -------------------------------------- *)

let with_clean f =
  Memsim.Heap.reset ();
  Typeart.Rt.reset ();
  Typeart.Rt.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Typeart.Rt.set_enabled false;
      Typeart.Rt.reset ();
      Memsim.Heap.reset ())
    f

let setup ?max_range_bytes () =
  let tsan = T.create () in
  let dev = Dev.create () in
  let rt = Cusan.Runtime.attach ?max_range_bytes ~tsan ~dev () in
  (tsan, dev, rt)

let write_kernel () =
  let k =
    K.make
      ~kir:
        Kir.Dsl.(
          ( modul ~kernels:[ "w" ]
              [ func "w" [ ptr "a"; scalar "n" ] [ store (p 0) tid (f 1.) ] ],
            "w" ))
      "w"
  in
  Cusan.Pass.instrument_kernel k;
  k

let launch_then_host_read_races () =
  with_clean @@ fun () ->
  let tsan, dev, _ = setup () in
  let buf = Cudasim.Memory.cuda_malloc dev ~ty:Typeart.Typedb.F64 ~count:16 in
  Dev.launch dev (write_kernel ()) ~grid:16 ~args:[| VPtr buf; VInt 16 |] ();
  T.read_range tsan ~addr:(Memsim.Ptr.addr buf) ~len:8;
  Alcotest.(check bool) "race" true (T.races_total tsan > 0)

let launch_sync_then_read_clean () =
  with_clean @@ fun () ->
  let tsan, dev, _ = setup () in
  let buf = Cudasim.Memory.cuda_malloc dev ~ty:Typeart.Typedb.F64 ~count:16 in
  Dev.launch dev (write_kernel ()) ~grid:16 ~args:[| VPtr buf; VInt 16 |] ();
  Dev.device_synchronize dev;
  T.read_range tsan ~addr:(Memsim.Ptr.addr buf) ~len:8;
  Alcotest.(check int) "clean" 0 (T.races_total tsan)

let host_write_then_launch_clean () =
  (* launch-side ordering: preceding host work happens-before the kernel *)
  with_clean @@ fun () ->
  let tsan, dev, _ = setup () in
  let buf = Cudasim.Memory.cuda_malloc_managed dev ~ty:Typeart.Typedb.F64 ~count:16 in
  T.write_range tsan ~addr:(Memsim.Ptr.addr buf) ~len:128;
  Dev.launch dev (write_kernel ()) ~grid:16 ~args:[| VPtr buf; VInt 16 |] ();
  Dev.device_synchronize dev;
  Alcotest.(check int) "clean" 0 (T.races_total tsan)

let unanalyzed_kernel_conservative () =
  with_clean @@ fun () ->
  let tsan, dev, rt = setup () in
  let k = K.make ~native:(fun ~grid:_ _ -> ()) "opaque" in
  let buf = Cudasim.Memory.cuda_malloc dev ~ty:Typeart.Typedb.F64 ~count:8 in
  Dev.launch dev k ~grid:8 ~args:[| VPtr buf |] ();
  (* conservative RW annotation: a host read without sync must race *)
  T.read_range tsan ~addr:(Memsim.Ptr.addr buf) ~len:8;
  Alcotest.(check bool) "race" true (T.races_total tsan > 0);
  Alcotest.(check int) "counted as unanalyzed" 1
    (Cusan.Runtime.counters rt).Cusan.Counters.unanalyzed_kernels

let whole_allocation_annotated () =
  with_clean @@ fun () ->
  let tsan, dev, _ = setup () in
  let buf = Cudasim.Memory.cuda_malloc dev ~ty:Typeart.Typedb.F64 ~count:1024 in
  (* pass an interior pointer; the annotation covers extent from there *)
  let mid = Memsim.Ptr.add buf ~elt:8 512 in
  Dev.launch dev (write_kernel ()) ~grid:16 ~args:[| VPtr mid; VInt 16 |] ();
  let c = T.counters tsan in
  Alcotest.(check int) "bytes = remaining extent" (512 * 8)
    c.Tsan.Counters.write_bytes

let max_range_caps_annotation () =
  with_clean @@ fun () ->
  let tsan, _, _ = setup () in
  ignore tsan;
  let tsan, dev, _ = setup ~max_range_bytes:256 () in
  let buf = Cudasim.Memory.cuda_malloc dev ~ty:Typeart.Typedb.F64 ~count:1024 in
  Dev.launch dev (write_kernel ()) ~grid:16 ~args:[| VPtr buf; VInt 16 |] ();
  Alcotest.(check int) "capped" 256 (T.counters tsan).Tsan.Counters.write_bytes

let counters_per_api () =
  with_clean @@ fun () ->
  let _, dev, rt = setup () in
  let buf = Cudasim.Memory.cuda_malloc dev ~ty:Typeart.Typedb.F64 ~count:8 in
  let h = Cudasim.Memory.host_malloc ~ty:Typeart.Typedb.F64 ~count:8 () in
  let s = Dev.stream_create dev in
  Dev.launch dev (write_kernel ()) ~grid:8 ~args:[| VPtr buf; VInt 8 |] ~stream:s ();
  Cudasim.Memory.memcpy dev ~dst:h ~src:buf ~bytes:64 ();
  Cudasim.Memory.memset dev ~dst:buf ~bytes:64 ~value:0 ();
  Dev.stream_synchronize dev s;
  Dev.device_synchronize dev;
  let e = Dev.event_create dev in
  Dev.event_record dev e s;
  Dev.event_synchronize dev e;
  let c = Cusan.Runtime.counters rt in
  Alcotest.(check int) "streams (default + user)" 2 c.Cusan.Counters.streams;
  Alcotest.(check int) "kernels" 1 c.Cusan.Counters.kernels;
  Alcotest.(check int) "memcpys" 1 c.Cusan.Counters.memcpys;
  Alcotest.(check int) "memsets" 1 c.Cusan.Counters.memsets;
  Alcotest.(check int) "syncs" 3 c.Cusan.Counters.syncs

let cross_stream_without_order_races () =
  with_clean @@ fun () ->
  let tsan, dev, _ = setup () in
  let a = Dev.stream_create ~flags:Dev.Non_blocking dev in
  let b = Dev.stream_create ~flags:Dev.Non_blocking dev in
  let buf = Cudasim.Memory.cuda_malloc dev ~ty:Typeart.Typedb.F64 ~count:8 in
  let k = write_kernel () in
  Dev.launch dev k ~grid:8 ~args:[| VPtr buf; VInt 8 |] ~stream:a ();
  Dev.launch dev k ~grid:8 ~args:[| VPtr buf; VInt 8 |] ~stream:b ();
  Alcotest.(check bool) "two unordered streams race" true
    (T.races_total tsan > 0)

let same_stream_sequential_clean () =
  with_clean @@ fun () ->
  let tsan, dev, _ = setup () in
  let s = Dev.stream_create dev in
  let buf = Cudasim.Memory.cuda_malloc dev ~ty:Typeart.Typedb.F64 ~count:8 in
  let k = write_kernel () in
  Dev.launch dev k ~grid:8 ~args:[| VPtr buf; VInt 8 |] ~stream:s ();
  Dev.launch dev k ~grid:8 ~args:[| VPtr buf; VInt 8 |] ~stream:s ();
  Alcotest.(check int) "stream FIFO means no race" 0 (T.races_total tsan)

let tests =
  [
    Alcotest.test_case "Fig. 8 nested call" `Quick fig8_nested_call;
    Alcotest.test_case "direct load/store" `Quick direct_load_store;
    Alcotest.test_case "read-modify-write" `Quick read_modify_write;
    Alcotest.test_case "untouched pointer" `Quick untouched_pointer;
    Alcotest.test_case "alias through let" `Quick alias_through_let;
    Alcotest.test_case "branch alias join" `Quick alias_joins_branch_bindings;
    Alcotest.test_case "access under loop+if" `Quick access_under_loop_and_if;
    Alcotest.test_case "index loads are reads" `Quick index_loads_count_as_reads;
    Alcotest.test_case "recursion conservative" `Quick recursion_conservative;
    Alcotest.test_case "mutual recursion fixpoint" `Quick
      mutual_recursion_fixpoint;
    Alcotest.test_case "two-level call chain" `Quick two_level_call_chain;
    Alcotest.test_case "instrument sets access" `Quick instrument_sets_access;
    Alcotest.test_case "instrument validates IR" `Quick
      instrument_rejects_invalid_ir;
    QCheck_alcotest.to_alcotest prop_analysis_overapproximates;
    Alcotest.test_case "launch then host read races" `Quick
      launch_then_host_read_races;
    Alcotest.test_case "launch+sync then read clean" `Quick
      launch_sync_then_read_clean;
    Alcotest.test_case "host write before launch clean" `Quick
      host_write_then_launch_clean;
    Alcotest.test_case "unanalyzed kernel conservative" `Quick
      unanalyzed_kernel_conservative;
    Alcotest.test_case "whole allocation annotated" `Quick
      whole_allocation_annotated;
    Alcotest.test_case "max_range caps annotation" `Quick
      max_range_caps_annotation;
    Alcotest.test_case "counters per API" `Quick counters_per_api;
    Alcotest.test_case "cross-stream unordered races" `Quick
      cross_stream_without_order_races;
    Alcotest.test_case "same stream sequential clean" `Quick
      same_stream_sequential_clean;
  ]

let () = Alcotest.run "cusan" [ ("cusan", tests) ]
