(* Tests for the schedule explorer (lib/explore): the dependency
   relation, sleep-set DPOR on synthetic scheduler programs with known
   schedule spaces, the sched-sensitive family end to end, the
   schedule-independence of race-free corpus programs, and the
   record/replay determinism contract. *)

module E = Explore
module Cases = Testsuite.Cases
module ER = Testsuite.Explore_runner

let mem w addr len = E.Mem { write = w; addr; len }
let send ~src ~dst ~tag = E.Send { src; dst; tag }
let recv ~owner ~src ~tag = E.Recv { owner; src; tag }
let dep = E.ops_dependent

(* --- the dependency relation ------------------------------------------ *)

let dep_mem () =
  Alcotest.(check bool) "overlapping write/read" true
    (dep (mem true 100 8) (mem false 104 8));
  Alcotest.(check bool) "symmetric" true
    (dep (mem false 104 8) (mem true 100 8));
  Alcotest.(check bool) "adjacent extents don't overlap" false
    (dep (mem true 100 8) (mem true 108 8));
  Alcotest.(check bool) "read/read commutes" false
    (dep (mem false 100 8) (mem false 100 8));
  Alcotest.(check bool) "mem vs message commutes" false
    (dep (mem true 100 8) (send ~src:0 ~dst:1 ~tag:0))

let dep_messages () =
  Alcotest.(check bool) "sends contending at one dst" true
    (dep (send ~src:1 ~dst:0 ~tag:3) (send ~src:2 ~dst:0 ~tag:3));
  Alcotest.(check bool) "sends to different dsts commute" false
    (dep (send ~src:1 ~dst:0 ~tag:3) (send ~src:1 ~dst:2 ~tag:3));
  Alcotest.(check bool) "wildcard recv matches any sender" true
    (dep (recv ~owner:0 ~src:(-1) ~tag:3) (send ~src:2 ~dst:0 ~tag:3));
  Alcotest.(check bool) "selective recv vs mismatched tag" false
    (dep (recv ~owner:0 ~src:1 ~tag:4) (send ~src:1 ~dst:0 ~tag:3));
  Alcotest.(check bool) "recv at wrong rank commutes" false
    (dep (recv ~owner:2 ~src:1 ~tag:3) (send ~src:1 ~dst:0 ~tag:3));
  Alcotest.(check bool) "recvs of one owner race for order" true
    (dep (recv ~owner:0 ~src:(-1) ~tag:3) (recv ~owner:0 ~src:1 ~tag:3))

(* --- DPOR over synthetic scheduler programs --------------------------- *)

(* Two tasks writing one cell: the space has exactly two inequivalent
   interleavings. The engine needs one extra (deduplicated) run to
   prove the reversal of the reversal is the original, so: three runs,
   two distinct traces, exhausted, and the b-before-a order first seen
   on schedule 2. *)
let synthetic_two_writers () =
  let run ~picker ~record_op =
    let order = ref [] in
    Sched.Scheduler.run ~picker
      [
        ("a", fun () -> record_op (mem true 0 8); order := "a" :: !order);
        ("b", fun () -> record_op (mem true 0 8); order := "b" :: !order);
      ];
    !order = [ "a"; "b" ] (* b ran first *)
  in
  let s = E.explore ~budget:16 ~run () in
  Alcotest.(check bool) "exhausted" true s.E.exhausted;
  Alcotest.(check int) "runs" 3 s.E.runs;
  Alcotest.(check int) "distinct traces" 2 s.E.distinct_traces;
  Alcotest.(check (option int)) "reversal found on schedule 2" (Some 2)
    s.E.exposed_at

(* Independent tasks: one schedule covers the space; no backtracking. *)
let synthetic_independent () =
  let run ~picker ~record_op =
    Sched.Scheduler.run ~picker
      [
        ("a", fun () -> record_op (mem true 0 8));
        ("b", fun () -> record_op (mem true 16 8));
      ];
    false
  in
  let s = E.explore ~budget:16 ~run () in
  Alcotest.(check int) "single run suffices" 1 s.E.runs;
  Alcotest.(check bool) "exhausted" true s.E.exhausted;
  Alcotest.(check int) "no branches" 0 s.E.branches;
  Alcotest.(check (option int)) "nothing exposed" None s.E.exposed_at

(* The budget is a hard cap even when the frontier still has work. *)
let synthetic_budget_cap () =
  let run ~picker ~record_op =
    Sched.Scheduler.run ~picker
      (List.init 4 (fun i ->
           ( Printf.sprintf "t%d" i,
             fun () ->
               record_op (mem true 0 8);
               Sched.Scheduler.yield ();
               record_op (mem true 0 8) )));
    false
  in
  let s = E.explore ~budget:5 ~run () in
  Alcotest.(check int) "stopped at the budget" 5 s.E.runs;
  Alcotest.(check bool) "not exhausted" false s.E.exhausted

(* --- the sched-sensitive family --------------------------------------- *)

(* The crux of the family: a single FIFO schedule (what a plain
   testsuite run executes) misses every seeded race. *)
let single_schedule_blind () =
  List.iter
    (fun (case : Cases.case) ->
      if case.expect = Cases.Racy then begin
        let res =
          Harness.Run.run ~nranks:case.nranks ~check_types:true
            ~flavor:Harness.Flavor.Must_cusan case.app
        in
        Alcotest.(check bool)
          (case.name ^ ": FIFO run misses the race")
          false
          (Harness.Run.has_races res)
      end)
    (Cases.sched_sensitive ())

(* Exploration classifies the whole family correctly: racy cases are
   exposed by some non-first schedule, clean cases exhaust their space
   without a single report. *)
let family_classified () =
  List.iter
    (fun (v : ER.explore_verdict) ->
      Alcotest.(check bool) (v.case.Cases.name ^ " classified") true v.pass;
      match v.case.Cases.expect with
      | Cases.Racy -> (
          match v.stats.E.exposed_at with
          | Some k ->
              Alcotest.(check bool)
                (v.case.Cases.name ^ " needed >1 schedule")
                true (k >= 2)
          | None -> Alcotest.fail (v.case.Cases.name ^ ": never exposed"))
      | Cases.Clean ->
          Alcotest.(check int)
            (v.case.Cases.name ^ " zero interesting runs")
            0 v.stats.E.interesting_runs;
          Alcotest.(check bool)
            (v.case.Cases.name ^ " space exhausted")
            true v.stats.E.exhausted)
    (ER.explore_family ~budget:64 ())

(* --- schedule independence of the race-free corpus -------------------- *)

let clean_corpus =
  List.filter (fun (c : Cases.case) -> c.expect = Cases.Clean) (Cases.all ())

(* Property: a race-free corpus program stays race-free in *every*
   explored schedule — correct synchronization is schedule-independent,
   and exploration must not manufacture false positives. *)
let prop_clean_schedule_independent =
  QCheck.Test.make
    ~name:"race-free corpus: zero reports in every explored schedule"
    ~count:10
    QCheck.(int_range 0 (List.length clean_corpus - 1))
    (fun idx ->
      let case = List.nth clean_corpus idx in
      let v = ER.explore_case ~budget:10 case in
      v.ER.stats.E.interesting_runs = 0)

(* --- record / replay --------------------------------------------------- *)

let render (res : Harness.Run.result) =
  let b = Buffer.create 256 in
  List.iter
    (fun (rank, r) ->
      Buffer.add_string b (Printf.sprintf "== rank %d ==\n" rank);
      Buffer.add_string b (Tsan.Report.to_string r))
    res.Harness.Run.races;
  Buffer.add_string b
    (Printf.sprintf "race_events=%d\n" res.Harness.Run.race_events);
  Buffer.add_string b
    (Printf.sprintf "musts=%d\n" (List.length res.Harness.Run.must_errors));
  Buffer.contents b

let run_with ?picker (case : Cases.case) =
  Harness.Run.run ~nranks:case.Cases.nranks ~check_types:true ?picker
    ~flavor:Harness.Flavor.Must_cusan case.Cases.app

(* Recording must not perturb the run it records: a recorded run's
   reports are byte-identical to the default FIFO run's. *)
let recording_is_fifo () =
  List.iter
    (fun (case : Cases.case) ->
      let r0 = run_with case in
      let buf = ref [] in
      let r1 = run_with ~picker:(E.recording_picker buf) case in
      Alcotest.(check string)
        (case.name ^ ": recording = FIFO")
        (render r0) (render r1);
      Alcotest.(check bool) (case.name ^ ": trace non-empty") true (!buf <> []))
    [ List.hd (Cases.all ()); List.hd (Cases.sched_sensitive ()) ]

(* Property: record a run's decision trace, replay it, and the reports
   come back byte-identical — over the whole corpus, racy and clean. *)
let prop_record_replay =
  QCheck.Test.make
    ~name:"record then replay reproduces reports byte-identically" ~count:12
    QCheck.(int_range 0 10000)
    (fun idx ->
      let cases = Cases.all () @ Cases.sched_sensitive () in
      let case = List.nth cases (idx mod List.length cases) in
      let buf = ref [] in
      let r1 = run_with ~picker:(E.recording_picker buf) case in
      let trace = List.rev !buf in
      let r2 = run_with ~picker:(E.replay_picker trace) case in
      render r1 = render r2)

let tests =
  [
    Alcotest.test_case "dependency: memory extents" `Quick dep_mem;
    Alcotest.test_case "dependency: messages" `Quick dep_messages;
    Alcotest.test_case "DPOR: two writers" `Quick synthetic_two_writers;
    Alcotest.test_case "DPOR: independent tasks" `Quick synthetic_independent;
    Alcotest.test_case "DPOR: budget cap" `Quick synthetic_budget_cap;
    Alcotest.test_case "FIFO misses the seeded races" `Quick
      single_schedule_blind;
    Alcotest.test_case "family classified over its space" `Quick
      family_classified;
    QCheck_alcotest.to_alcotest prop_clean_schedule_independent;
    Alcotest.test_case "recording picker is FIFO" `Quick recording_is_fifo;
    QCheck_alcotest.to_alcotest prop_record_replay;
  ]

let () = Alcotest.run "explore" [ ("explore", tests) ]
