(* Tests for the deterministic fault-injection layer: PRNG and plan
   determinism, real CUDA error semantics (sticky vs. recoverable,
   deferred async surfacing), MPI error handlers under injection, the
   scheduler watchdog on partial hangs, and crash-resilient tool
   reporting (an aborted rank still flushes its counters). *)

module Prng = Faultsim.Prng
module Plan = Faultsim.Plan
module Site = Faultsim.Site
module Inj = Faultsim.Injector
module Dev = Cudasim.Device
module Mem = Cudasim.Memory
module Err = Cudasim.Error
module Mpi = Mpisim.Mpi
module Dt = Mpisim.Datatype
module R = Harness.Run

let f64 = Typeart.Typedb.F64
let alloc_f64 n = Memsim.Heap.alloc Memsim.Space.Host_pageable (n * 8)

(* Reset simulator globals and guarantee the injector is disarmed no
   matter how the test exits. *)
let with_clean f =
  Memsim.Heap.reset ();
  Typeart.Rt.reset ();
  Fun.protect
    ~finally:(fun () ->
      Inj.disarm ();
      Memsim.Heap.reset ();
      Typeart.Rt.reset ())
    f

let plan_of_string spec =
  match Plan.parse_spec spec with
  | Ok (_, plan) -> plan
  | Error msg -> Alcotest.failf "bad plan %S: %s" spec msg

let noop_kernel = Cudasim.Kernel.make ~native:(fun ~grid:_ _ -> ()) "fi_noop"

(* --- PRNG ---------------------------------------------------------------- *)

let prng_same_seed_same_stream () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 64 do
    Alcotest.(check int64) "same draw" (Prng.next a) (Prng.next b)
  done

let prng_different_seed_differs () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let da = List.init 8 (fun _ -> Prng.next a) in
  let db = List.init 8 (fun _ -> Prng.next b) in
  Alcotest.(check bool) "streams differ" true (da <> db)

let prng_float_in_unit_interval () =
  let g = Prng.create 7 in
  for _ = 1 to 1000 do
    let f = Prng.float g in
    if f < 0. || f >= 1. then Alcotest.failf "draw %g outside [0,1)" f
  done

(* --- plan grammar -------------------------------------------------------- *)

let plan_parse_roundtrip () =
  let spec = "cuda_malloc@1#2:fail,kernel_launch%0.25:abort,mpi_wait*3:hang" in
  match Plan.parse_spec (spec ^ ",seed=42") with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok (seed, plan) ->
      Alcotest.(check (option int)) "seed" (Some 42) seed;
      Alcotest.(check string) "round trip" spec (Plan.to_string plan)

let plan_parse_defaults () =
  match Plan.parse_spec "mpi_send" with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok (seed, [ r ]) ->
      Alcotest.(check (option int)) "no seed" None seed;
      Alcotest.(check string) "defaults: any rank, 1st occurrence, fail"
        "mpi_send#1:fail" (Plan.rule_to_string r)
  | Ok _ -> Alcotest.fail "expected one rule"

let plan_parse_rank_zero () =
  match Plan.parse_spec "mpi_send@0#1:abort" with
  | Ok (_, [ { Plan.rank = Some 0; action = Plan.Abort; _ } ]) -> ()
  | Ok _ -> Alcotest.fail "wrong rule"
  | Error msg -> Alcotest.failf "rank 0 rejected: %s" msg

let plan_parse_errors () =
  let bad spec =
    match Plan.parse_spec spec with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%S accepted" spec
  in
  bad "frobnicate#1:fail";
  bad "mpi_send:explode";
  bad "kernel_launch%1.5:fail";
  bad "mpi_wait#0:fail";
  bad "seed=banana"

(* --- probe matching ------------------------------------------------------ *)

let probe_counts_occurrences () =
  with_clean @@ fun () ->
  Inj.arm ~seed:0 ~plan:(plan_of_string "cuda_malloc#2:fail") ();
  Alcotest.(check bool) "1st occurrence passes" true
    (Inj.probe ~site:Site.Cuda_malloc ~rank:0 () = None);
  Alcotest.(check bool) "2nd occurrence fires" true
    (Inj.probe ~site:Site.Cuda_malloc ~rank:0 () = Some Plan.Fail);
  (* Occurrences count per (site, rank): rank 1 is still at its first. *)
  Alcotest.(check bool) "other rank unaffected" true
    (Inj.probe ~site:Site.Cuda_malloc ~rank:1 () = None);
  match Inj.log () with
  | [ d ] ->
      Alcotest.(check int) "logged occurrence" 2 d.Inj.d_occurrence;
      Alcotest.(check int) "logged rank" 0 d.Inj.d_rank
  | l -> Alcotest.failf "expected one logged firing, got %d" (List.length l)

let probe_every_kth () =
  with_clean @@ fun () ->
  Inj.arm ~seed:0 ~plan:(plan_of_string "mpi_send*3:fail") ();
  let fired =
    List.init 9 (fun _ -> Inj.probe ~site:Site.Mpi_send ~rank:0 () <> None)
  in
  Alcotest.(check (list bool)) "every 3rd"
    [ false; false; true; false; false; true; false; false; true ]
    fired

let disarmed_probe_is_noop () =
  with_clean @@ fun () ->
  Alcotest.(check bool) "disarmed" false (Inj.enabled ());
  Alcotest.(check bool) "no decision" true
    (Inj.probe ~site:Site.Kernel_launch ~rank:0 () = None);
  Alcotest.(check int) "no log" 0 (Inj.injected_count ())

(* --- CUDA error semantics ------------------------------------------------ *)

let malloc_failure_is_recoverable () =
  with_clean @@ fun () ->
  Inj.arm ~seed:0 ~plan:(plan_of_string "cuda_malloc#1:fail") ();
  let dev = Dev.create () in
  (match Mem.cuda_malloc dev ~ty:f64 ~count:8 with
  | _ -> Alcotest.fail "injected cudaMalloc succeeded"
  | exception Err.Cuda_failure { code = Err.Memory_allocation; _ } -> ());
  (* cudaErrorMemoryAllocation is not sticky: peek sees it, get clears. *)
  Alcotest.(check string) "peek" "cudaErrorMemoryAllocation"
    (Err.to_string (Dev.peek_at_last_error dev));
  Alcotest.(check string) "get" "cudaErrorMemoryAllocation"
    (Err.to_string (Dev.get_last_error dev));
  Alcotest.(check string) "cleared" "cudaSuccess"
    (Err.to_string (Dev.get_last_error dev));
  (* The second allocation (occurrence 2, no matching rule) works. *)
  let p = Mem.cuda_malloc dev ~ty:f64 ~count:8 in
  ignore (p : Memsim.Ptr.t)

let kernel_fault_defers_to_sync () =
  with_clean @@ fun () ->
  Inj.arm ~seed:0 ~plan:(plan_of_string "kernel_launch#1:fail") ();
  let dev = Dev.create ~mode:Dev.Eager () in
  (* The launch itself reports success, like a real async launch whose
     kernel later faults... *)
  Dev.launch dev noop_kernel ~grid:1 ~args:[||] ();
  Alcotest.(check string) "nothing surfaced yet" "cudaSuccess"
    (Err.to_string (Dev.peek_at_last_error dev));
  (* ...and the error surfaces at the next synchronization point. *)
  (match Dev.device_synchronize dev with
  | () -> Alcotest.fail "deferred error did not surface"
  | exception Err.Cuda_failure { code = Err.Launch_failed; ctx } ->
      Alcotest.(check bool) "ctx names the sync point" true
        (String.length ctx > 0));
  (* cudaErrorLaunchFailure is sticky: never cleared... *)
  Alcotest.(check string) "sticky" "cudaErrorLaunchFailure"
    (Err.to_string (Dev.get_last_error dev));
  Alcotest.(check string) "still sticky after get" "cudaErrorLaunchFailure"
    (Err.to_string (Dev.get_last_error dev));
  (* ...and the context is corrupted: further work is refused. *)
  match Dev.launch dev noop_kernel ~grid:1 ~args:[||] () with
  | () -> Alcotest.fail "corrupted context accepted work"
  | exception Err.Cuda_failure { code = Err.Launch_failed; _ } -> ()

(* --- MPI error handlers under injection ---------------------------------- *)

let errors_return_survives_injected_fault () =
  with_clean @@ fun () ->
  Inj.arm ~seed:0 ~plan:(plan_of_string "mpi_send@0#1:fail") ();
  let code = ref Mpisim.Comm.Err_success in
  let got = ref 0. in
  Mpi.run ~nranks:2 (fun ctx ->
      Mpi.comm_set_errhandler ctx Mpisim.Comm.Errors_return;
      let buf = alloc_f64 1 in
      if ctx.Mpi.rank = 0 then begin
        Memsim.Access.raw_set_f64 buf 0 3.25;
        (* First send is eaten by the injector; with MPI_ERRORS_RETURN
           the call reports failure instead of aborting the rank. *)
        Mpi.send ctx ~buf ~count:1 ~dt:Dt.double ~dst:1 ~tag:0;
        code := Mpi.last_error ctx;
        Mpi.send ctx ~buf ~count:1 ~dt:Dt.double ~dst:1 ~tag:0
      end
      else begin
        Mpi.recv ctx ~buf ~count:1 ~dt:Dt.double ~src:0 ~tag:0;
        got := Memsim.Access.raw_get_f64 buf 0
      end);
  Alcotest.(check string) "error class" "MPI_ERR_OTHER"
    (Mpi.error_string !code);
  Alcotest.(check (float 0.)) "retry delivered" 3.25 !got;
  Alcotest.(check int) "one fault fired" 1 (Inj.injected_count ())

(* --- watchdog ------------------------------------------------------------ *)

let watchdog_stops_partial_hang () =
  (* Rank 0 spins on MPI_Test for a message that never comes; rank 1
     blocks in MPI_Recv. Not a deadlock (rank 0 stays runnable), so only
     the watchdog can stop it — and its wait-for diagnostic must name
     both the spinner and the blocked call. *)
  let res =
    R.run ~nranks:2 ~watchdog:20_000 ~flavor:Harness.Flavor.Must_cusan
      (fun env ->
        let ctx = env.R.mpi in
        let buf = alloc_f64 1 in
        if ctx.Mpi.rank = 0 then begin
          let req = Mpi.irecv ctx ~buf ~count:1 ~dt:Dt.double ~src:1 ~tag:0 in
          while not (Mpi.test ctx req) do () done
        end
        else Mpi.recv ctx ~buf ~count:1 ~dt:Dt.double ~src:0 ~tag:0)
  in
  match res.R.stall with
  | None -> Alcotest.fail "watchdog did not fire"
  | Some s ->
      Alcotest.(check (list string)) "spinner named" [ "rank0" ]
        s.Sched.Scheduler.stall_spinning;
      Alcotest.(check (list (pair string string)))
        "blocked call named"
        [ ("rank1", "MPI_Recv(src=0, tag=0)") ]
        s.Sched.Scheduler.stall_blocked

let injected_hang_is_diagnosed () =
  (* An injected hang in MPI_Wait leaves rank 0 blocked forever; rank 1
     completes and parks in MPI_Finalize. The deadlock detector then
     names the injected hang explicitly. *)
  let faults = (0, plan_of_string "mpi_wait@0#1:hang") in
  let res =
    R.run ~nranks:2 ~watchdog:50_000 ~faults
      ~flavor:Harness.Flavor.Must_cusan (fun env ->
        let ctx = env.R.mpi in
        let buf = alloc_f64 1 in
        if ctx.Mpi.rank = 0 then begin
          let req = Mpi.irecv ctx ~buf ~count:1 ~dt:Dt.double ~src:1 ~tag:0 in
          Mpi.wait ctx req
        end
        else Mpi.send ctx ~buf ~count:1 ~dt:Dt.double ~dst:0 ~tag:0)
  in
  Alcotest.(check int) "one fault fired" 1 (List.length res.R.fault_log);
  match res.R.deadlock with
  | Some [ (t0, r0); (t1, r1) ] ->
      Alcotest.(check string) "hung task" "rank0" t0;
      Alcotest.(check string) "hang reason" "injected hang at mpi_wait" r0;
      Alcotest.(check string) "peer task" "rank1" t1;
      Alcotest.(check string) "peer parked in finalize"
        "MPI_Finalize (collective, waiting for peers)" r1
  | other ->
      Alcotest.failf "expected 2-party deadlock, got %s"
        (match other with
        | None -> "no deadlock"
        | Some l -> Fmt.str "%d parties" (List.length l))

(* --- crash-resilient reporting ------------------------------------------- *)

let aborted_rank_still_flushes_tools () =
  let faults = (3, plan_of_string "mpi_send@0#1:abort") in
  let res =
    R.run ~nranks:2 ~watchdog:50_000 ~faults
      ~flavor:Harness.Flavor.Must_cusan (fun env ->
        let ctx = env.R.mpi in
        if ctx.Mpi.rank = 0 then begin
          let dev = env.R.dev in
          let buf = Mem.cuda_malloc dev ~ty:f64 ~count:4 in
          Dev.launch dev
            (env.R.compile noop_kernel)
            ~grid:1
            ~args:[| Kir.Interp.VPtr buf |]
            ();
          Dev.device_synchronize dev;
          (* Dies here: the peer must not hang on it (send is buffered,
             rank 1 posted no matching receive). *)
          Mpi.send ctx ~buf ~count:4 ~dt:Dt.double ~dst:1 ~tag:0
        end)
  in
  (match res.R.failures with
  | [ (0, why) ] ->
      Alcotest.(check bool) "abort message has provenance" true
        (String.length why > 0
        &&
        let sub = "injected abort" in
        let n = String.length why and m = String.length sub in
        let rec at i = i + m <= n && (String.sub why i m = sub || at (i + 1)) in
        at 0)
  | l -> Alcotest.failf "expected rank 0 failure, got %d" (List.length l));
  Alcotest.(check (option (list (pair string string)))) "no deadlock" None
    res.R.deadlock;
  (* The dead rank's CuSan counters were still flushed into the result. *)
  Alcotest.(check int) "kernel launch counted" 1
    res.R.cuda_counters.Cusan.Counters.kernels;
  Alcotest.(check bool) "no false positive from the abort path" false
    (R.has_races res)

(* --- determinism --------------------------------------------------------- *)

let prob_app (env : R.env) =
  let ctx = env.R.mpi in
  let dev = env.R.dev in
  ignore ctx.Mpi.rank;
  for _ = 1 to 6 do
    match Mem.cuda_malloc dev ~ty:f64 ~count:4 with
    | _ -> ()
    | exception Err.Cuda_failure _ -> ignore (Dev.get_last_error dev)
  done

let same_seed_same_fault_log () =
  let faults = (11, plan_of_string "cuda_malloc%0.4:fail") in
  let go () = R.run ~nranks:2 ~watchdog:50_000 ~faults ~flavor:Harness.Flavor.Must_cusan prob_app in
  let r1 = go () and r2 = go () in
  Alcotest.(check bool) "probabilistic rules fired" true
    (List.length r1.R.fault_log > 0);
  Alcotest.(check int) "same count" (List.length r1.R.fault_log)
    (List.length r2.R.fault_log);
  Alcotest.(check bool) "identical replay logs" true
    (r1.R.fault_log = r2.R.fault_log);
  (* A different seed draws a different schedule. *)
  let r3 =
    R.run ~nranks:2 ~watchdog:50_000
      ~faults:(12, plan_of_string "cuda_malloc%0.4:fail")
      ~flavor:Harness.Flavor.Must_cusan prob_app
  in
  Alcotest.(check bool) "seed matters" true (r1.R.fault_log <> r3.R.fault_log)

let matrix_stable_under_unfired_plan () =
  (* Armed but never firing (the plan targets a rank that does not
     exist): every verdict must match the baseline run exactly. *)
  let baseline = Testsuite.Runner.run_all () in
  let armed =
    Testsuite.Runner.run_all ~faults:(0, plan_of_string "mpi_send@9#1:fail") ()
  in
  Alcotest.(check int) "nothing fired" 0
    (List.fold_left (fun a v -> a + v.Testsuite.Runner.injected) 0 armed);
  List.iter2
    (fun (b : Testsuite.Runner.verdict) (a : Testsuite.Runner.verdict) ->
      if b.Testsuite.Runner.detected <> a.Testsuite.Runner.detected then
        Alcotest.failf "verdict flip in %s"
          b.Testsuite.Runner.case.Testsuite.Cases.name;
      if not a.Testsuite.Runner.pass then
        Alcotest.failf "armed run fails %s"
          a.Testsuite.Runner.case.Testsuite.Cases.name)
    baseline armed

(* --- hard failures: crash propagation and post-mortems ------------------- *)

let crash_propagates_and_leaves_post_mortem () =
  let faults = (0, plan_of_string "mpi_send@0#2:crash") in
  let peer_code = ref Mpisim.Comm.Err_success in
  let got = ref 0. in
  let res =
    R.run ~nranks:2 ~watchdog:50_000 ~faults ~flavor:Harness.Flavor.Must_cusan
      (fun env ->
        let ctx = env.R.mpi in
        Mpi.comm_set_errhandler ctx Mpisim.Comm.Errors_return;
        let buf = alloc_f64 1 in
        if ctx.Mpi.rank = 0 then begin
          Memsim.Access.raw_set_f64 buf 0 4.5;
          Mpi.send ctx ~buf ~count:1 ~dt:Dt.double ~dst:1 ~tag:0;
          (* The crash fires here and unwinds the whole rank. *)
          Mpi.send ctx ~buf ~count:1 ~dt:Dt.double ~dst:1 ~tag:1
        end
        else begin
          (* The first message was in flight before the crash. *)
          Mpi.recv ctx ~buf ~count:1 ~dt:Dt.double ~src:0 ~tag:0;
          got := Memsim.Access.raw_get_f64 buf 0;
          (* The second never left: dead peer, fail fast. *)
          Mpi.recv ctx ~buf ~count:1 ~dt:Dt.double ~src:0 ~tag:1;
          peer_code := Mpi.last_error ctx
        end)
  in
  Alcotest.(check (float 0.)) "in-flight message delivered" 4.5 !got;
  Alcotest.(check string) "peer sees MPI_ERR_PROC_FAILED"
    "MPI_ERR_PROC_FAILED"
    (Mpi.error_string !peer_code);
  (match res.R.failures with
  | [ (0, _) ] -> ()
  | l -> Alcotest.failf "expected a rank-0 failure, got %d" (List.length l));
  (match res.R.post_mortems with
  | [ pm ] ->
      Alcotest.(check int) "post-mortem rank" 0 pm.R.pm_rank;
      Alcotest.(check string) "post-mortem names the fault site" "mpi_send"
        pm.R.pm_site
  | l -> Alcotest.failf "expected one post-mortem, got %d" (List.length l));
  Alcotest.(check (option (list (pair string string)))) "no deadlock" None
    res.R.deadlock

(* Crash events appear as an explicit instant on the dying rank's track,
   attributed to the firing fault site, so a Chrome trace shows *why*
   the rank ended. *)
let crash_emits_trace_instant_on_dying_track () =
  let faults = (0, plan_of_string "mpi_send@1#1:crash") in
  Trace.Recorder.enable ();
  Fun.protect ~finally:Trace.Recorder.disable @@ fun () ->
  ignore
    (R.run ~nranks:2 ~watchdog:50_000 ~faults ~flavor:Harness.Flavor.Vanilla
       (fun env ->
         let ctx = env.R.mpi in
         Mpi.comm_set_errhandler ctx Mpisim.Comm.Errors_return;
         let buf = alloc_f64 1 in
         if ctx.Mpi.rank = 1 then
           Mpi.send ctx ~buf ~count:1 ~dt:Dt.double ~dst:0 ~tag:0
         else begin
           Mpi.recv ctx ~buf ~count:1 ~dt:Dt.double ~src:1 ~tag:0;
           ignore (Mpi.last_error ctx)
         end));
  let evs = Trace.Recorder.events () in
  match
    List.find_opt (fun e -> e.Trace.Event.name = "rank_crashed") evs
  with
  | None -> Alcotest.fail "no rank_crashed instant recorded"
  | Some e ->
      Alcotest.(check string) "category" "crash" e.Trace.Event.cat;
      Alcotest.(check int) "dying rank's pid" 1 e.Trace.Event.pid;
      Alcotest.(check string) "dying rank's track" "rank1" e.Trace.Event.track;
      Alcotest.(check (option string)) "fault site attributed"
        (Some "mpi_send")
        (List.assoc_opt "site" e.Trace.Event.args)

(* --- transport faults ---------------------------------------------------- *)

let drop_on_blocking_recv_is_diagnosed () =
  (* A dropped message with a blocking receiver cannot be recovered by
     the receiver alone — but it must be an orderly *diagnosed* hang
     (deadlock detector or watchdog), never a silent wedge. *)
  let faults = (0, plan_of_string "mpi_send@0#1:drop") in
  let res =
    R.run ~nranks:2 ~watchdog:50_000 ~faults ~flavor:Harness.Flavor.Vanilla
      (fun env ->
        let ctx = env.R.mpi in
        let buf = alloc_f64 1 in
        if ctx.Mpi.rank = 0 then
          Mpi.send ctx ~buf ~count:1 ~dt:Dt.double ~dst:1 ~tag:0
        else Mpi.recv ctx ~buf ~count:1 ~dt:Dt.double ~src:0 ~tag:0)
  in
  Alcotest.(check int) "one fault fired" 1 (List.length res.R.fault_log);
  Alcotest.(check bool) "hang diagnosed" true
    (res.R.deadlock <> None || res.R.stall <> None)

let delayed_message_is_overtaken () =
  (* delay2 hides the first message from matching for two progress
     rounds: a later same-tag message overtakes it — exactly the
     reordering a lossy network produces — yet both are delivered. *)
  let faults = (0, plan_of_string "mpi_send@0#1:delay2") in
  let got = ref [] in
  let res =
    R.run ~nranks:2 ~watchdog:50_000 ~faults ~flavor:Harness.Flavor.Vanilla
      (fun env ->
        let ctx = env.R.mpi in
        let buf = alloc_f64 1 in
        if ctx.Mpi.rank = 0 then
          List.iter
            (fun v ->
              Memsim.Access.raw_set_f64 buf 0 v;
              Mpi.send ctx ~buf ~count:1 ~dt:Dt.double ~dst:1 ~tag:0)
            [ 1.; 2. ]
        else
          for _ = 1 to 2 do
            Mpi.recv ctx ~buf ~count:1 ~dt:Dt.double ~src:0 ~tag:0;
            got := Memsim.Access.raw_get_f64 buf 0 :: !got
          done)
  in
  Alcotest.(check int) "one fault fired" 1 (List.length res.R.fault_log);
  Alcotest.(check (list (float 0.))) "second message overtakes the delayed"
    [ 2.; 1. ]
    (List.rev !got)

(* --- wedged streams ------------------------------------------------------ *)

let wedged_stream_is_sticky_at_sync () =
  with_clean @@ fun () ->
  Inj.arm ~seed:0 ~plan:(plan_of_string "kernel_launch#1:wedge") ();
  let dev = Dev.create ~mode:Dev.Eager () in
  Dev.launch dev noop_kernel ~grid:1 ~args:[||] ();
  (* A wedged stream fails nothing until you wait on it. *)
  Alcotest.(check string) "launch itself succeeded" "cudaSuccess"
    (Err.to_string (Dev.peek_at_last_error dev));
  (match Dev.device_synchronize dev with
  | () -> Alcotest.fail "sync on a wedged stream returned"
  | exception Err.Cuda_failure { code = Err.Launch_timeout; _ } -> ());
  (* The timeout is sticky, like a real hung-kernel abort. *)
  Alcotest.(check string) "sticky" "cudaErrorLaunchTimeout"
    (Err.to_string (Dev.get_last_error dev));
  Alcotest.(check string) "still sticky after get" "cudaErrorLaunchTimeout"
    (Err.to_string (Dev.get_last_error dev))

(* --- application-level recovery (ULFM + lib/resilience) ------------------ *)

let pingpong_survives_peer_crash () =
  let faults = (0, plan_of_string "mpi_send@1#3:crash") in
  let rep = Apps.Pingpong.resilient_report ~nranks:2 in
  let res =
    R.run ~nranks:2 ~watchdog:1_000_000 ~faults ~flavor:Harness.Flavor.Vanilla
      (Apps.Pingpong.resilient_app ~n:64 ~iters:6 rep)
  in
  (match res.R.post_mortems with
  | [ pm ] -> Alcotest.(check int) "rank 1 died" 1 pm.R.pm_rank
  | l -> Alcotest.failf "expected one post-mortem, got %d" (List.length l));
  Alcotest.(check bool) "survivor recovered" true
    rep.Apps.Pingpong.recovered.(0);
  Alcotest.(check int) "all rounds completed" 6 rep.Apps.Pingpong.completed.(0);
  Alcotest.(check (float 0.)) "payload intact across the recovery"
    (Apps.Pingpong.expected_checksum ~n:64)
    rep.Apps.Pingpong.checksum.(0)

let jacobi_recovers_to_reference_norm () =
  let nx = 32 and ny = 32 and iters = 40 in
  let cfg =
    Apps.Jacobi.config ~nx ~ny ~iters ~norm_every:(iters / 2) ~racy:false
      ~exchange:Apps.Jacobi.Sendrecv ~nranks:2 ()
  in
  let out = Apps.Jacobi.resilient_outcome ~nranks:2 in
  let faults = (0, plan_of_string "mpi_collective@1#4:crash") in
  let res =
    R.run ~nranks:2 ~watchdog:5_000_000 ~faults ~flavor:Harness.Flavor.Vanilla
      (Apps.Jacobi.resilient_app cfg out)
  in
  let expect = Apps.Jacobi.reference ~nx ~ny ~iters ~norm_every:1 in
  (match res.R.post_mortems with
  | [ pm ] -> Alcotest.(check int) "rank 1 died" 1 pm.R.pm_rank
  | l -> Alcotest.failf "expected one post-mortem, got %d" (List.length l));
  Alcotest.(check bool) "survivor recovered" true out.Apps.Jacobi.recovered.(0);
  Alcotest.(check (float 1e-9)) "survivor converges to the serial reference"
    expect
    cfg.Apps.Jacobi.results.(0)

let tests =
  [
    Alcotest.test_case "prng: same seed, same stream" `Quick
      prng_same_seed_same_stream;
    Alcotest.test_case "prng: different seed differs" `Quick
      prng_different_seed_differs;
    Alcotest.test_case "prng: float in [0,1)" `Quick prng_float_in_unit_interval;
    Alcotest.test_case "plan: parse round-trips" `Quick plan_parse_roundtrip;
    Alcotest.test_case "plan: defaults" `Quick plan_parse_defaults;
    Alcotest.test_case "plan: rank 0 accepted" `Quick plan_parse_rank_zero;
    Alcotest.test_case "plan: bad specs rejected" `Quick plan_parse_errors;
    Alcotest.test_case "probe: counts per (site, rank)" `Quick
      probe_counts_occurrences;
    Alcotest.test_case "probe: every k-th" `Quick probe_every_kth;
    Alcotest.test_case "probe: disarmed is a no-op" `Quick disarmed_probe_is_noop;
    Alcotest.test_case "cuda: malloc failure is recoverable" `Quick
      malloc_failure_is_recoverable;
    Alcotest.test_case "cuda: kernel fault defers to sync, then sticky" `Quick
      kernel_fault_defers_to_sync;
    Alcotest.test_case "mpi: ERRORS_RETURN survives injected fault" `Quick
      errors_return_survives_injected_fault;
    Alcotest.test_case "watchdog: stops a partial hang with diagnostics" `Quick
      watchdog_stops_partial_hang;
    Alcotest.test_case "watchdog: injected hang is diagnosed" `Quick
      injected_hang_is_diagnosed;
    Alcotest.test_case "abort: dead rank still flushes tool state" `Quick
      aborted_rank_still_flushes_tools;
    Alcotest.test_case "determinism: same seed, same fault log" `Quick
      same_seed_same_fault_log;
    Alcotest.test_case "crash: propagates and leaves a post-mortem" `Quick
      crash_propagates_and_leaves_post_mortem;
    Alcotest.test_case "crash: instant on the dying rank's track" `Quick
      crash_emits_trace_instant_on_dying_track;
    Alcotest.test_case "drop: blocking receiver is diagnosed" `Quick
      drop_on_blocking_recv_is_diagnosed;
    Alcotest.test_case "delay: reorders but delivers" `Quick
      delayed_message_is_overtaken;
    Alcotest.test_case "wedge: sticky timeout at sync" `Quick
      wedged_stream_is_sticky_at_sync;
    Alcotest.test_case "recovery: pingpong survives a peer crash" `Quick
      pingpong_survives_peer_crash;
    Alcotest.test_case "recovery: jacobi reconverges after a crash" `Quick
      jacobi_recovers_to_reference_norm;
    Alcotest.test_case "stability: armed-but-unfired matches baseline" `Slow
      matrix_stable_under_unfired_plan;
  ]

let () = Alcotest.run "faultsim" [ ("faultsim", tests) ]
