(* Tests for the tool-configuration harness and the full testsuite
   matrix (every case must be classified correctly — the `dune runtest`
   version of `make check-cutests`). *)

module F = Harness.Flavor
module R = Harness.Run


let small_app (env : R.env) =
  let dev = env.R.dev in
  let buf = Cudasim.Memory.cuda_malloc dev ~ty:Typeart.Typedb.F64 ~count:32 in
  Cudasim.Memory.memset dev ~dst:buf ~bytes:256 ~value:0 ();
  Cudasim.Device.device_synchronize dev;
  Cudasim.Memory.free dev buf

let flavors () =
  Alcotest.(check int) "five flavors" 5 (List.length F.all);
  List.iter
    (fun f ->
      match F.of_string (F.name f) with
      | Some f' -> Alcotest.(check string) "roundtrip" (F.name f) (F.name f')
      | None -> Alcotest.failf "%s does not parse" (F.name f))
    F.all;
  Alcotest.(check bool) "vanilla has no tsan" false (F.uses_tsan F.Vanilla);
  Alcotest.(check bool) "cusan uses typeart" true (F.uses_typeart F.Cusan);
  Alcotest.(check bool) "must does not use typeart" false (F.uses_typeart F.Must)

let all_flavors_run_clean () =
  List.iter
    (fun flavor ->
      let res = R.run ~nranks:2 ~flavor small_app in
      Alcotest.(check bool) (F.name flavor ^ " no deadlock") true
        (res.R.deadlock = None);
      Alcotest.(check int) (F.name flavor ^ " no races") 0
        (List.length res.R.races))
    F.all

let deadlock_reported () =
  let app (env : R.env) =
    if env.R.mpi.Mpisim.Mpi.rank = 0 then begin
      let buf = Cudasim.Memory.host_malloc ~ty:Typeart.Typedb.F64 ~count:1 () in
      Mpisim.Mpi.recv env.R.mpi ~buf ~count:1 ~dt:Mpisim.Datatype.double ~src:1
        ~tag:0
    end
  in
  let res = R.run ~nranks:2 ~flavor:F.Vanilla app in
  match res.R.deadlock with
  | Some blocked -> Alcotest.(check bool) "rank0 blocked" true (blocked <> [])
  | None -> Alcotest.fail "deadlock not reported"

let hooks_isolated_between_runs () =
  (* A MUST&CuSan run followed by a vanilla run: the vanilla run must not
     see any leftover instrumentation. *)
  ignore (R.run ~nranks:2 ~flavor:F.Must_cusan small_app);
  Alcotest.(check bool) "memsim hooks cleared" false (Memsim.Hooks.any ());
  let res = R.run ~nranks:2 ~flavor:F.Vanilla small_app in
  Alcotest.(check int) "no tsan counters in vanilla" 0
    res.R.tsan_counters.Tsan.Counters.fiber_switches

let proc_time_positive () =
  let res = R.run ~nranks:2 ~flavor:F.Vanilla small_app in
  Alcotest.(check bool) "wall >= 0" true (res.R.wall_s >= 0.);
  Alcotest.(check bool) "proc_s >= 0" true (res.R.proc_s >= 0.);
  Alcotest.(check bool) "virtual device time charged" true
    (res.R.device_virtual_s > 0.)

let rss_grows_with_tools () =
  let rss flavor =
    (R.run ~nranks:2 ~flavor small_app).R.rss_bytes
  in
  let v = rss F.Vanilla and c = rss F.Must_cusan in
  Alcotest.(check bool) "vanilla positive" true (v > 0);
  Alcotest.(check bool) "tools add memory" true (c > v)

let baseline_rss_added () =
  let base = 10_000_000 in
  let r0 = R.run ~nranks:2 ~flavor:F.Vanilla small_app in
  let r1 = R.run ~nranks:2 ~baseline_rss:base ~flavor:F.Vanilla small_app in
  Alcotest.(check int) "baseline added" (r0.R.rss_bytes + base) r1.R.rss_bytes

let determinism () =
  (* Same program, same flavor: identical counters and race verdicts. *)
  let run () =
    let cfg = Apps.Jacobi.config ~nx:16 ~ny:16 ~iters:5 ~norm_every:5 ~nranks:2 () in
    let res = R.run ~nranks:2 ~flavor:F.Must_cusan (Apps.Jacobi.app cfg) in
    ( res.R.tsan_counters.Tsan.Counters.fiber_switches,
      res.R.tsan_counters.Tsan.Counters.happens_before,
      res.R.cuda_counters.Cusan.Counters.kernels,
      List.length res.R.races,
      cfg.Apps.Jacobi.results.(0) )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "deterministic" true (a = b)

(* --- the full correctness matrix, as part of `dune runtest` -------------- *)

let testsuite_size () =
  let cases = Testsuite.Cases.all () in
  Alcotest.(check bool)
    (Printf.sprintf "at least as many cases as the paper's 49 (got %d)"
       (List.length cases))
    true
    (List.length cases >= 49)

let testsuite_names_unique () =
  let names = List.map (fun c -> c.Testsuite.Cases.name) (Testsuite.Cases.all ()) in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let testsuite_all_classified () =
  let verdicts = Testsuite.Runner.run_all () in
  List.iter
    (fun v ->
      if not v.Testsuite.Runner.pass then
        Alcotest.failf "%s" (Fmt.str "%a" Testsuite.Runner.pp_verdict v))
    verdicts

let testsuite_all_classified_deferred () =
  let verdicts = Testsuite.Runner.run_all ~mode:Cudasim.Device.Deferred () in
  let pass, total = Testsuite.Runner.summary verdicts in
  Alcotest.(check int) "all pass in deferred mode" total pass

let tests =
  [
    Alcotest.test_case "flavors" `Quick flavors;
    Alcotest.test_case "all flavors run clean" `Quick all_flavors_run_clean;
    Alcotest.test_case "deadlock reported" `Quick deadlock_reported;
    Alcotest.test_case "hooks isolated between runs" `Quick
      hooks_isolated_between_runs;
    Alcotest.test_case "timing fields" `Quick proc_time_positive;
    Alcotest.test_case "rss grows with tools" `Quick rss_grows_with_tools;
    Alcotest.test_case "baseline rss" `Quick baseline_rss_added;
    Alcotest.test_case "determinism" `Quick determinism;
    Alcotest.test_case "testsuite >= 49 cases" `Quick testsuite_size;
    Alcotest.test_case "testsuite names unique" `Quick testsuite_names_unique;
    Alcotest.test_case "testsuite fully classified (eager)" `Quick
      testsuite_all_classified;
    Alcotest.test_case "testsuite fully classified (deferred)" `Quick
      testsuite_all_classified_deferred;
  ]

let () = Alcotest.run "harness" [ ("harness", tests) ]
