(* Unit tests for the MPI simulator: point-to-point matching semantics,
   non-blocking requests, collectives, CUDA-awareness (device buffers),
   deadlock detection, and interception hooks. *)

module Mpi = Mpisim.Mpi
module Dt = Mpisim.Datatype

let with_clean f =
  Memsim.Heap.reset ();
  Mpisim.Hooks.clear ();
  Fun.protect ~finally:(fun () -> Memsim.Heap.reset (); Mpisim.Hooks.clear ()) f

let alloc_f64 ?(space = Memsim.Space.Host_pageable) n =
  Memsim.Heap.alloc space (n * 8)

let fill p vs = List.iteri (Memsim.Access.raw_set_f64 p) vs
let read p n = List.init n (Memsim.Access.raw_get_f64 p)

let send_recv_roundtrip () =
  with_clean @@ fun () ->
  let got = ref [] in
  Mpi.run ~nranks:2 (fun ctx ->
      let buf = alloc_f64 4 in
      if ctx.Mpi.rank = 0 then begin
        fill buf [ 1.; 2.; 3.; 4. ];
        Mpi.send ctx ~buf ~count:4 ~dt:Dt.double ~dst:1 ~tag:0
      end
      else begin
        Mpi.recv ctx ~buf ~count:4 ~dt:Dt.double ~src:0 ~tag:0;
        got := read buf 4
      end);
  Alcotest.(check (list (float 0.))) "payload" [ 1.; 2.; 3.; 4. ] !got

let device_buffers_cuda_aware () =
  with_clean @@ fun () ->
  let got = ref 0. in
  Mpi.run ~nranks:2 (fun ctx ->
      let buf = alloc_f64 ~space:Memsim.Space.Device 2 in
      if ctx.Mpi.rank = 0 then begin
        Memsim.Access.raw_set_f64 buf 1 6.5;
        Mpi.send ctx ~buf ~count:2 ~dt:Dt.double ~dst:1 ~tag:0
      end
      else begin
        Mpi.recv ctx ~buf ~count:2 ~dt:Dt.double ~src:0 ~tag:0;
        got := Memsim.Access.raw_get_f64 buf 1
      end);
  Alcotest.(check (float 0.)) "device payload" 6.5 !got

let tags_match () =
  with_clean @@ fun () ->
  let order = ref [] in
  Mpi.run ~nranks:2 (fun ctx ->
      let buf = alloc_f64 1 in
      if ctx.Mpi.rank = 0 then begin
        Memsim.Access.raw_set_f64 buf 0 1.;
        Mpi.send ctx ~buf ~count:1 ~dt:Dt.double ~dst:1 ~tag:10;
        Memsim.Access.raw_set_f64 buf 0 2.;
        Mpi.send ctx ~buf ~count:1 ~dt:Dt.double ~dst:1 ~tag:20
      end
      else begin
        (* receive tag 20 first although tag 10 arrived first *)
        Mpi.recv ctx ~buf ~count:1 ~dt:Dt.double ~src:0 ~tag:20;
        order := Memsim.Access.raw_get_f64 buf 0 :: !order;
        Mpi.recv ctx ~buf ~count:1 ~dt:Dt.double ~src:0 ~tag:10;
        order := Memsim.Access.raw_get_f64 buf 0 :: !order
      end);
  Alcotest.(check (list (float 0.))) "tag selection" [ 1.; 2. ] !order

let same_tag_fifo () =
  with_clean @@ fun () ->
  let vals = ref [] in
  Mpi.run ~nranks:2 (fun ctx ->
      let buf = alloc_f64 1 in
      if ctx.Mpi.rank = 0 then
        List.iter
          (fun v ->
            Memsim.Access.raw_set_f64 buf 0 v;
            Mpi.send ctx ~buf ~count:1 ~dt:Dt.double ~dst:1 ~tag:0)
          [ 1.; 2.; 3. ]
      else
        for _ = 1 to 3 do
          Mpi.recv ctx ~buf ~count:1 ~dt:Dt.double ~src:0 ~tag:0;
          vals := Memsim.Access.raw_get_f64 buf 0 :: !vals
        done);
  Alcotest.(check (list (float 0.))) "non-overtaking" [ 1.; 2.; 3. ]
    (List.rev !vals)

let any_source_any_tag () =
  with_clean @@ fun () ->
  let n = ref 0 in
  Mpi.run ~nranks:3 (fun ctx ->
      let buf = alloc_f64 1 in
      if ctx.Mpi.rank = 0 then
        for _ = 1 to 2 do
          Mpi.recv ctx ~buf ~count:1 ~dt:Dt.double ~src:Mpi.any_source
            ~tag:Mpi.any_tag;
          incr n
        done
      else begin
        Memsim.Access.raw_set_f64 buf 0 (float ctx.Mpi.rank);
        Mpi.send ctx ~buf ~count:1 ~dt:Dt.double ~dst:0 ~tag:ctx.Mpi.rank
      end);
  Alcotest.(check int) "both received" 2 !n

let isend_irecv_waitall () =
  with_clean @@ fun () ->
  let got = ref 0. in
  Mpi.run ~nranks:2 (fun ctx ->
      let a = alloc_f64 1 and b = alloc_f64 1 in
      if ctx.Mpi.rank = 0 then begin
        Memsim.Access.raw_set_f64 a 0 3.;
        Memsim.Access.raw_set_f64 b 0 4.;
        let r1 = Mpi.isend ctx ~buf:a ~count:1 ~dt:Dt.double ~dst:1 ~tag:1 in
        let r2 = Mpi.isend ctx ~buf:b ~count:1 ~dt:Dt.double ~dst:1 ~tag:2 in
        Mpi.waitall ctx [ r1; r2 ]
      end
      else begin
        let r1 = Mpi.irecv ctx ~buf:a ~count:1 ~dt:Dt.double ~src:0 ~tag:1 in
        let r2 = Mpi.irecv ctx ~buf:b ~count:1 ~dt:Dt.double ~src:0 ~tag:2 in
        Mpi.waitall ctx [ r1; r2 ];
        got := Memsim.Access.raw_get_f64 a 0 +. Memsim.Access.raw_get_f64 b 0
      end);
  Alcotest.(check (float 0.)) "both delivered" 7. !got

let test_polls () =
  with_clean @@ fun () ->
  let polls = ref 0 in
  Mpi.run ~nranks:2 (fun ctx ->
      let buf = alloc_f64 1 in
      if ctx.Mpi.rank = 0 then begin
        Sched.Scheduler.yield ();
        Memsim.Access.raw_set_f64 buf 0 1.;
        Mpi.send ctx ~buf ~count:1 ~dt:Dt.double ~dst:1 ~tag:0
      end
      else begin
        let r = Mpi.irecv ctx ~buf ~count:1 ~dt:Dt.double ~src:0 ~tag:0 in
        while not (Mpi.test ctx r) do
          incr polls;
          Sched.Scheduler.yield ()
        done
      end);
  Alcotest.(check bool) "polled at least once" true (!polls >= 1)

let sendrecv_exchange () =
  with_clean @@ fun () ->
  let results = Array.make 2 0. in
  Mpi.run ~nranks:2 (fun ctx ->
      let sb = alloc_f64 1 and rb = alloc_f64 1 in
      Memsim.Access.raw_set_f64 sb 0 (float (ctx.Mpi.rank + 1));
      let peer = 1 - ctx.Mpi.rank in
      Mpi.sendrecv ctx ~sendbuf:sb ~sendcount:1 ~dst:peer ~sendtag:0
        ~recvbuf:rb ~recvcount:1 ~src:peer ~recvtag:0 ~dt:Dt.double;
      results.(ctx.Mpi.rank) <- Memsim.Access.raw_get_f64 rb 0);
  Alcotest.(check (float 0.)) "rank0 got rank1's" 2. results.(0);
  Alcotest.(check (float 0.)) "rank1 got rank0's" 1. results.(1)

let truncation_detected () =
  with_clean @@ fun () ->
  match
    Mpi.run ~nranks:2 (fun ctx ->
        let big = alloc_f64 4 and small = alloc_f64 2 in
        if ctx.Mpi.rank = 0 then
          Mpi.send ctx ~buf:big ~count:4 ~dt:Dt.double ~dst:1 ~tag:0
        else Mpi.recv ctx ~buf:small ~count:2 ~dt:Dt.double ~src:0 ~tag:0)
  with
  | () -> Alcotest.fail "truncation unnoticed"
  | exception Mpisim.Comm.Truncation _ -> ()

let recv_smaller_ok () =
  with_clean @@ fun () ->
  Mpi.run ~nranks:2 (fun ctx ->
      let buf = alloc_f64 8 in
      if ctx.Mpi.rank = 0 then
        Mpi.send ctx ~buf ~count:2 ~dt:Dt.double ~dst:1 ~tag:0
      else Mpi.recv ctx ~buf ~count:8 ~dt:Dt.double ~src:0 ~tag:0)

let deadlock_two_recvs () =
  with_clean @@ fun () ->
  match
    Mpi.run ~nranks:2 (fun ctx ->
        let buf = alloc_f64 1 in
        let peer = 1 - ctx.Mpi.rank in
        Mpi.recv ctx ~buf ~count:1 ~dt:Dt.double ~src:peer ~tag:0)
  with
  | () -> Alcotest.fail "expected deadlock"
  | exception Sched.Scheduler.Deadlock l ->
      Alcotest.(check int) "both ranks blocked" 2 (List.length l)

let wait_without_send_deadlocks () =
  with_clean @@ fun () ->
  match
    Mpi.run ~nranks:2 (fun ctx ->
        if ctx.Mpi.rank = 1 then begin
          let buf = alloc_f64 1 in
          let r = Mpi.irecv ctx ~buf ~count:1 ~dt:Dt.double ~src:0 ~tag:0 in
          Mpi.wait ctx r
        end)
  with
  | () -> Alcotest.fail "expected deadlock"
  | exception Sched.Scheduler.Deadlock _ -> ()

let invalid_rank_rejected () =
  with_clean @@ fun () ->
  match
    Mpi.run ~nranks:2 (fun ctx ->
        if ctx.Mpi.rank = 0 then begin
          let buf = alloc_f64 1 in
          Mpi.send ctx ~buf ~count:1 ~dt:Dt.double ~dst:7 ~tag:0
        end)
  with
  | () -> Alcotest.fail "invalid rank accepted"
  | exception Mpisim.Comm.Invalid_rank 7 -> ()

(* --- collectives -------------------------------------------------------- *)

let barrier_orders () =
  with_clean @@ fun () ->
  let log = ref [] in
  Mpi.run ~nranks:3 (fun ctx ->
      if ctx.Mpi.rank = 0 then
        for _ = 1 to 3 do
          Sched.Scheduler.yield ()
        done;
      log := Printf.sprintf "pre%d" ctx.Mpi.rank :: !log;
      Mpi.barrier ctx;
      log := Printf.sprintf "post%d" ctx.Mpi.rank :: !log);
  let l = List.rev !log in
  let idx s = Option.get (List.find_index (( = ) s) l) in
  (* every pre comes before every post *)
  List.iter
    (fun r ->
      List.iter
        (fun r' ->
          Alcotest.(check bool) "pre<post" true
            (idx (Printf.sprintf "pre%d" r) < idx (Printf.sprintf "post%d" r')))
        [ 0; 1; 2 ])
    [ 0; 1; 2 ]

let allreduce_sum () =
  with_clean @@ fun () ->
  let results = Array.make 3 0. in
  Mpi.run ~nranks:3 (fun ctx ->
      let sb = alloc_f64 2 and rb = alloc_f64 2 in
      fill sb [ float ctx.Mpi.rank; 1. ];
      Mpi.allreduce ctx ~sendbuf:sb ~recvbuf:rb ~count:2 ~dt:Dt.double
        ~op:Mpi.Sum;
      results.(ctx.Mpi.rank) <- Memsim.Access.raw_get_f64 rb 0 +. (10. *. Memsim.Access.raw_get_f64 rb 1));
  Array.iter (fun v -> Alcotest.(check (float 0.)) "0+1+2 and 3" 33. v) results

let allreduce_max_min () =
  with_clean @@ fun () ->
  let mx = ref 0. and mn = ref 0. in
  Mpi.run ~nranks:4 (fun ctx ->
      let sb = alloc_f64 1 and rb = alloc_f64 1 in
      Memsim.Access.raw_set_f64 sb 0 (float ((ctx.Mpi.rank * 7) mod 5));
      Mpi.allreduce ctx ~sendbuf:sb ~recvbuf:rb ~count:1 ~dt:Dt.double ~op:Mpi.Max;
      if ctx.Mpi.rank = 0 then mx := Memsim.Access.raw_get_f64 rb 0;
      Mpi.allreduce ctx ~sendbuf:sb ~recvbuf:rb ~count:1 ~dt:Dt.double ~op:Mpi.Min;
      if ctx.Mpi.rank = 0 then mn := Memsim.Access.raw_get_f64 rb 0);
  Alcotest.(check (float 0.)) "max" 4. !mx;
  Alcotest.(check (float 0.)) "min" 0. !mn

let allreduce_int () =
  with_clean @@ fun () ->
  let got = ref 0 in
  Mpi.run ~nranks:2 (fun ctx ->
      let sb = Memsim.Heap.alloc Memsim.Space.Host_pageable 4 in
      let rb = Memsim.Heap.alloc Memsim.Space.Host_pageable 4 in
      Memsim.Access.raw_set_i32 sb 0 (ctx.Mpi.rank + 5);
      Mpi.allreduce ctx ~sendbuf:sb ~recvbuf:rb ~count:1 ~dt:Dt.int_ ~op:Mpi.Sum;
      if ctx.Mpi.rank = 0 then got := Memsim.Access.raw_get_i32 rb 0);
  Alcotest.(check int) "5+6" 11 !got

let bcast_root_to_all () =
  with_clean @@ fun () ->
  let results = Array.make 3 0. in
  Mpi.run ~nranks:3 (fun ctx ->
      let buf = alloc_f64 1 in
      if ctx.Mpi.rank = 1 then Memsim.Access.raw_set_f64 buf 0 42.;
      Mpi.bcast ctx ~buf ~count:1 ~dt:Dt.double ~root:1;
      results.(ctx.Mpi.rank) <- Memsim.Access.raw_get_f64 buf 0);
  Array.iter (fun v -> Alcotest.(check (float 0.)) "bcast" 42. v) results

let reduce_to_root () =
  with_clean @@ fun () ->
  let root_val = ref 0. and other_val = ref (-1.) in
  Mpi.run ~nranks:3 (fun ctx ->
      let sb = alloc_f64 1 and rb = alloc_f64 1 in
      Memsim.Access.raw_set_f64 sb 0 2.;
      Memsim.Access.raw_set_f64 rb 0 (-1.);
      Mpi.reduce ctx ~sendbuf:sb ~recvbuf:rb ~count:1 ~dt:Dt.double ~op:Mpi.Prod
        ~root:2;
      if ctx.Mpi.rank = 2 then root_val := Memsim.Access.raw_get_f64 rb 0
      else other_val := Memsim.Access.raw_get_f64 rb 0);
  Alcotest.(check (float 0.)) "2*2*2 at root" 8. !root_val;
  Alcotest.(check (float 0.)) "others untouched" (-1.) !other_val

let collectives_repeat () =
  with_clean @@ fun () ->
  (* 20 successive rounds stay in lockstep. *)
  let acc = ref 0. in
  Mpi.run ~nranks:2 (fun ctx ->
      let sb = alloc_f64 1 and rb = alloc_f64 1 in
      for i = 1 to 20 do
        Memsim.Access.raw_set_f64 sb 0 (float i);
        Mpi.allreduce ctx ~sendbuf:sb ~recvbuf:rb ~count:1 ~dt:Dt.double
          ~op:Mpi.Sum;
        if ctx.Mpi.rank = 0 then acc := !acc +. Memsim.Access.raw_get_f64 rb 0
      done);
  Alcotest.(check (float 0.)) "sum of 2i" 420. !acc

(* --- extended point-to-point and collectives ------------------------------- *)

let ssend_rendezvous () =
  with_clean @@ fun () ->
  (* Ssend completes only after the receiver matched: the receive's
     effect must be globally visible before the sender proceeds. *)
  let sender_done_after_recv = ref false in
  let recv_posted = ref false in
  Mpi.run ~nranks:2 (fun ctx ->
      let buf = alloc_f64 1 in
      if ctx.Mpi.rank = 0 then begin
        Memsim.Access.raw_set_f64 buf 0 1.;
        Mpi.ssend ctx ~buf ~count:1 ~dt:Dt.double ~dst:1 ~tag:0;
        sender_done_after_recv := !recv_posted
      end
      else begin
        for _ = 1 to 3 do
          Sched.Scheduler.yield ()
        done;
        recv_posted := true;
        Mpi.recv ctx ~buf ~count:1 ~dt:Dt.double ~src:0 ~tag:0
      end);
  Alcotest.(check bool) "ssend waited for the match" true !sender_done_after_recv

let crossed_ssends_deadlock () =
  with_clean @@ fun () ->
  (* The classic head-to-head MPI_Ssend deadlock. *)
  match
    Mpi.run ~nranks:2 (fun ctx ->
        let buf = alloc_f64 1 in
        let peer = 1 - ctx.Mpi.rank in
        Mpi.ssend ctx ~buf ~count:1 ~dt:Dt.double ~dst:peer ~tag:0;
        Mpi.recv ctx ~buf ~count:1 ~dt:Dt.double ~src:peer ~tag:0)
  with
  | () -> Alcotest.fail "expected deadlock"
  | exception Sched.Scheduler.Deadlock _ -> ()

let deadlock_names_crossed_ssends () =
  with_clean @@ fun () ->
  (* The wait-for diagnostic must name the blocked MPI call and its
     peer rank, not just a condition variable. *)
  match
    Mpi.run ~nranks:2 (fun ctx ->
        let buf = alloc_f64 1 in
        let peer = 1 - ctx.Mpi.rank in
        Mpi.ssend ctx ~buf ~count:1 ~dt:Dt.double ~dst:peer ~tag:3;
        Mpi.recv ctx ~buf ~count:1 ~dt:Dt.double ~src:peer ~tag:3)
  with
  | () -> Alcotest.fail "expected deadlock"
  | exception Sched.Scheduler.Deadlock pairs ->
      Alcotest.(check (list (pair string string)))
        "blocked calls with peer ranks"
        [
          ("rank0", "MPI_Ssend(dst=1, tag=3)");
          ("rank1", "MPI_Ssend(dst=0, tag=3)");
        ]
        pairs

let deadlock_names_unwaited_ssend () =
  with_clean @@ fun () ->
  (* Rank 0's Ssend is never received; rank 1 runs to MPI_Finalize. The
     diagnostic should show exactly that shape. *)
  match
    Mpi.run ~nranks:2 (fun ctx ->
        if ctx.Mpi.rank = 0 then begin
          let buf = alloc_f64 1 in
          Mpi.ssend ctx ~buf ~count:1 ~dt:Dt.double ~dst:1 ~tag:0
        end)
  with
  | () -> Alcotest.fail "expected deadlock"
  | exception Sched.Scheduler.Deadlock pairs ->
      Alcotest.(check (list (pair string string)))
        "ssend vs finalize"
        [
          ("rank0", "MPI_Ssend(dst=1, tag=0)");
          ("rank1", "MPI_Finalize (collective, waiting for peers)");
        ]
        pairs

let errors_return_gives_codes () =
  with_clean @@ fun () ->
  (* MPI_Comm_set_errhandler(MPI_ERRORS_RETURN): a truncated receive
     reports MPI_ERR_TRUNCATE through last_error instead of dying. *)
  let code = ref Mpisim.Comm.Err_success in
  let continued = ref false in
  Mpi.run ~nranks:2 (fun ctx ->
      Mpi.comm_set_errhandler ctx Mpisim.Comm.Errors_return;
      let buf = alloc_f64 8 in
      if ctx.Mpi.rank = 0 then
        Mpi.send ctx ~buf ~count:8 ~dt:Dt.double ~dst:1 ~tag:0
      else begin
        Mpi.recv ctx ~buf ~count:2 ~dt:Dt.double ~src:0 ~tag:0;
        code := Mpi.last_error ctx;
        continued := true
      end);
  Alcotest.(check string)
    "error class" "MPI_ERR_TRUNCATE"
    (Mpi.error_string !code);
  Alcotest.(check bool) "rank survived the error" true !continued

let crossed_buffered_sends_fine () =
  with_clean @@ fun () ->
  (* The same pattern with buffered MPI_Send completes. *)
  Mpi.run ~nranks:2 (fun ctx ->
      let buf = alloc_f64 1 in
      let peer = 1 - ctx.Mpi.rank in
      Mpi.send ctx ~buf ~count:1 ~dt:Dt.double ~dst:peer ~tag:0;
      Mpi.recv ctx ~buf ~count:1 ~dt:Dt.double ~src:peer ~tag:0)

let allgather_orders_by_rank () =
  with_clean @@ fun () ->
  let results = Array.make 3 [] in
  Mpi.run ~nranks:3 (fun ctx ->
      let sb = alloc_f64 2 and rb = alloc_f64 6 in
      fill sb [ float (10 * ctx.Mpi.rank); float ((10 * ctx.Mpi.rank) + 1) ];
      Mpi.allgather ctx ~sendbuf:sb ~recvbuf:rb ~count:2 ~dt:Dt.double;
      results.(ctx.Mpi.rank) <- read rb 6);
  Array.iter
    (fun got ->
      Alcotest.(check (list (float 0.))) "rank order"
        [ 0.; 1.; 10.; 11.; 20.; 21. ] got)
    results

let gather_only_root () =
  with_clean @@ fun () ->
  let root_got = ref [] and other_got = ref [] in
  Mpi.run ~nranks:2 (fun ctx ->
      let sb = alloc_f64 1 and rb = alloc_f64 2 in
      fill sb [ float (ctx.Mpi.rank + 1) ];
      fill rb [ -1.; -1. ];
      Mpi.gather ctx ~sendbuf:sb ~recvbuf:rb ~count:1 ~dt:Dt.double ~root:1;
      if ctx.Mpi.rank = 1 then root_got := read rb 2 else other_got := read rb 2);
  Alcotest.(check (list (float 0.))) "root" [ 1.; 2. ] !root_got;
  Alcotest.(check (list (float 0.))) "non-root untouched" [ -1.; -1. ] !other_got

let scatter_slices () =
  with_clean @@ fun () ->
  let results = Array.make 3 0. in
  Mpi.run ~nranks:3 (fun ctx ->
      let sb = alloc_f64 3 and rb = alloc_f64 1 in
      if ctx.Mpi.rank = 0 then fill sb [ 7.; 8.; 9. ];
      Mpi.scatter ctx ~sendbuf:sb ~recvbuf:rb ~count:1 ~dt:Dt.double ~root:0;
      results.(ctx.Mpi.rank) <- Memsim.Access.raw_get_f64 rb 0);
  Alcotest.(check (array (float 0.))) "slices" [| 7.; 8.; 9. |] results

(* --- hooks ----------------------------------------------------------------- *)

let hooks_fire_in_order () =
  with_clean @@ fun () ->
  let calls = ref [] in
  Mpisim.Hooks.add (fun ~rank phase call ->
      if rank = 0 && phase = Mpisim.Hooks.Pre then
        calls := Mpisim.Hooks.call_name call :: !calls);
  Mpi.run ~nranks:2 (fun ctx ->
      let buf = alloc_f64 1 in
      if ctx.Mpi.rank = 0 then begin
        let r = Mpi.isend ctx ~buf ~count:1 ~dt:Dt.double ~dst:1 ~tag:0 in
        Mpi.wait ctx r;
        Mpi.barrier ctx
      end
      else begin
        Mpi.recv ctx ~buf ~count:1 ~dt:Dt.double ~src:0 ~tag:0;
        Mpi.barrier ctx
      end);
  Alcotest.(check (list string)) "rank0 call sequence"
    [ "MPI_Init"; "MPI_Isend"; "MPI_Wait"; "MPI_Barrier"; "MPI_Finalize" ]
    (List.rev !calls)

let datatypes () =
  Alcotest.(check int) "double" 8 Dt.double.Dt.size;
  Alcotest.(check int) "float" 4 Dt.float_.Dt.size;
  Alcotest.(check int) "int" 4 Dt.int_.Dt.size;
  Alcotest.(check int) "byte" 1 Dt.byte.Dt.size;
  let c = Dt.contiguous 5 Dt.double in
  Alcotest.(check int) "contiguous size" 40 c.Dt.size;
  Alcotest.(check bool) "elem kept" true
    (Typeart.Typedb.equal c.Dt.elem Typeart.Typedb.F64)

(* Property: random sequences of matched send/recv pairs always deliver,
   in FIFO order per (src,tag). *)
let prop_matched_traffic =
  QCheck.Test.make ~name:"matched traffic always delivered" ~count:100
    QCheck.(list_of_size Gen.(1 -- 15) (pair (int_range 0 2) (int_range 0 1)))
    (fun msgs ->
      Memsim.Heap.reset ();
      Mpisim.Hooks.clear ();
      let expected = List.mapi (fun i (_, tag) -> (i, tag)) msgs in
      let delivered = ref [] in
      Mpi.run ~nranks:2 (fun ctx ->
          let buf = Memsim.Heap.alloc Memsim.Space.Host_pageable 8 in
          if ctx.Mpi.rank = 0 then
            List.iteri
              (fun i (yields, tag) ->
                for _ = 1 to yields do
                  Sched.Scheduler.yield ()
                done;
                Memsim.Access.raw_set_f64 buf 0 (float i);
                Mpi.send ctx ~buf ~count:1 ~dt:Dt.double ~dst:1 ~tag)
              msgs
          else
            (* Receive per tag in order. *)
            List.iter
              (fun tag ->
                Mpi.recv ctx ~buf ~count:1 ~dt:Dt.double ~src:0 ~tag;
                delivered :=
                  (int_of_float (Memsim.Access.raw_get_f64 buf 0), tag)
                  :: !delivered)
              (List.map snd msgs |> List.sort compare));
      Memsim.Heap.reset ();
      (* per-tag sequence numbers must be increasing (FIFO) *)
      let by_tag tag =
        List.filter (fun (_, t) -> t = tag) (List.rev !delivered) |> List.map fst
      in
      let sorted l = List.sort compare l = l in
      sorted (by_tag 0) && sorted (by_tag 1)
      && List.length !delivered = List.length expected)

(* --- hard failures ------------------------------------------------------ *)

(* Kill the calling rank exactly as an injected [:crash] does: raise
   [Rank_killed] and let [Mpi.run]'s per-rank supervisor mark the rank
   dead on its communicators. Every test runs under a watchdog, so a
   wait that wrongly blocks on the dead peer fails the test instead of
   hanging the suite. *)
let die ctx =
  raise
    (Faultsim.Injector.Rank_killed
       { rank = ctx.Mpi.rank; site = Faultsim.Site.Mpi_send })

(* Regression: a request whose peer died must be complete-with-error —
   MPI_Wait returns and surfaces MPI_ERR_PROC_FAILED, it never hangs. *)
let wait_on_dead_peer_never_hangs () =
  with_clean @@ fun () ->
  let code = ref Mpisim.Comm.Err_success in
  let state = ref None in
  Mpi.run ~watchdog:50_000 ~nranks:2 (fun ctx ->
      Mpi.comm_set_errhandler ctx Mpisim.Comm.Errors_return;
      if ctx.Mpi.rank = 0 then die ctx
      else begin
        let buf = alloc_f64 1 in
        let req = Mpi.irecv ctx ~buf ~count:1 ~dt:Dt.double ~src:0 ~tag:0 in
        Mpi.wait ctx req;
        code := Mpi.last_error ctx;
        state :=
          Some (req.Mpisim.Request.complete, req.Mpisim.Request.error <> None)
      end);
  Alcotest.(check string) "wait surfaces the failure" "MPI_ERR_PROC_FAILED"
    (Mpi.error_string !code);
  Alcotest.(check (option (pair bool bool)))
    "request is complete-with-error"
    (Some (true, true))
    !state

let waitall_with_dead_and_live_peers () =
  with_clean @@ fun () ->
  let code = ref Mpisim.Comm.Err_success in
  let failed = ref [] in
  let got = ref 0. in
  Mpi.run ~watchdog:50_000 ~nranks:3 (fun ctx ->
      Mpi.comm_set_errhandler ctx Mpisim.Comm.Errors_return;
      match ctx.Mpi.rank with
      | 0 -> die ctx
      | 2 ->
          let buf = alloc_f64 1 in
          Memsim.Access.raw_set_f64 buf 0 7.5;
          Mpi.send ctx ~buf ~count:1 ~dt:Dt.double ~dst:1 ~tag:1
      | _ ->
          let a = alloc_f64 1 and b = alloc_f64 1 in
          let r_dead =
            Mpi.irecv ctx ~buf:a ~count:1 ~dt:Dt.double ~src:0 ~tag:0
          in
          let r_live =
            Mpi.irecv ctx ~buf:b ~count:1 ~dt:Dt.double ~src:2 ~tag:1
          in
          (* Returns with the error instead of hanging on the dead rank. *)
          Mpi.waitall ctx [ r_dead; r_live ];
          code := Mpi.last_error ctx;
          failed := Mpi.failed_ranks ctx;
          (* The live transfer is unaffected: finish it and read. *)
          Mpi.clear_error ctx;
          Mpi.wait ctx r_live;
          if Mpi.last_error ctx = Mpisim.Comm.Err_success then
            got := Memsim.Access.raw_get_f64 b 0);
  Alcotest.(check string) "waitall surfaces the dead peer"
    "MPI_ERR_PROC_FAILED"
    (Mpi.error_string !code);
  Alcotest.(check (list int)) "failure detector names rank 0" [ 0 ] !failed;
  Alcotest.(check (float 0.)) "live message still delivered" 7.5 !got

let in_flight_message_outlives_sender () =
  with_clean @@ fun () ->
  let first = ref 0. and second = ref Mpisim.Comm.Err_success in
  Mpi.run ~watchdog:50_000 ~nranks:2 (fun ctx ->
      Mpi.comm_set_errhandler ctx Mpisim.Comm.Errors_return;
      let buf = alloc_f64 1 in
      if ctx.Mpi.rank = 0 then begin
        Memsim.Access.raw_set_f64 buf 0 9.25;
        Mpi.send ctx ~buf ~count:1 ~dt:Dt.double ~dst:1 ~tag:0;
        die ctx
      end
      else begin
        (* The payload was already in flight when the sender died:
           deliverable, like RDMA data that left the NIC. *)
        Mpi.recv ctx ~buf ~count:1 ~dt:Dt.double ~src:0 ~tag:0;
        first := Memsim.Access.raw_get_f64 buf 0;
        (* Nothing further is coming: fail fast, never hang. *)
        Mpi.recv ctx ~buf ~count:1 ~dt:Dt.double ~src:0 ~tag:0;
        second := Mpi.last_error ctx
      end);
  Alcotest.(check (float 0.)) "in-flight payload delivered" 9.25 !first;
  Alcotest.(check string) "next receive fails fast" "MPI_ERR_PROC_FAILED"
    (Mpi.error_string !second)

(* --- ULFM-style recovery ------------------------------------------------ *)

let revoke_wakes_blocked_peer () =
  with_clean @@ fun () ->
  let code = ref Mpisim.Comm.Err_success in
  Mpi.run ~watchdog:50_000 ~nranks:2 (fun ctx ->
      Mpi.comm_set_errhandler ctx Mpisim.Comm.Errors_return;
      let buf = alloc_f64 1 in
      if ctx.Mpi.rank = 0 then Mpi.comm_revoke ctx
      else begin
        (* Blocks (nothing is coming) until the revocation lands. *)
        Mpi.recv ctx ~buf ~count:1 ~dt:Dt.double ~src:0 ~tag:0;
        code := Mpi.last_error ctx
      end);
  Alcotest.(check string) "blocked receive woken with MPI_ERR_REVOKED"
    "MPI_ERR_REVOKED"
    (Mpi.error_string !code)

let shrink_builds_working_subcomm () =
  with_clean @@ fun () ->
  (* world rank -> (new rank, new size, payload exchanged on the sub) *)
  let seen = Array.make 3 None in
  Mpi.run ~watchdog:50_000 ~nranks:3 (fun ctx ->
      Mpi.comm_set_errhandler ctx Mpisim.Comm.Errors_return;
      if ctx.Mpi.rank = 1 then die ctx
      else begin
        let buf = alloc_f64 1 in
        (* Observe the failure first so the live set is settled. *)
        Mpi.recv ctx ~buf ~count:1 ~dt:Dt.double ~src:1 ~tag:0;
        Mpi.clear_error ctx;
        let sub = Mpi.comm_shrink ctx in
        (* The shrunken communicator is fully functional: survivors are
           renumbered densely and point-to-point works. *)
        if sub.Mpi.rank = 0 then begin
          Memsim.Access.raw_set_f64 buf 0 3.5;
          Mpi.send sub ~buf ~count:1 ~dt:Dt.double ~dst:1 ~tag:9
        end
        else Mpi.recv sub ~buf ~count:1 ~dt:Dt.double ~src:0 ~tag:9;
        seen.(ctx.Mpi.rank) <-
          Some (sub.Mpi.rank, sub.Mpi.size, Memsim.Access.raw_get_f64 buf 0)
      end);
  Alcotest.(check (option (triple int int (float 0.))))
    "world rank 0 -> sub rank 0"
    (Some (0, 2, 3.5))
    seen.(0);
  Alcotest.(check (option (triple int int (float 0.))))
    "world rank 2 -> sub rank 1, payload delivered"
    (Some (1, 2, 3.5))
    seen.(2);
  Alcotest.(check bool) "dead rank never joined" true (seen.(1) = None)

let agree_is_bitwise_and_of_survivors () =
  with_clean @@ fun () ->
  let vals = Array.make 3 (-1) in
  Mpi.run ~watchdog:50_000 ~nranks:3 (fun ctx ->
      Mpi.comm_set_errhandler ctx Mpisim.Comm.Errors_return;
      if ctx.Mpi.rank = 0 then die ctx
      else begin
        (* Agreement must work even on a revoked communicator — it is
           the one collective recovery can rely on. *)
        Mpi.comm_revoke ctx;
        vals.(ctx.Mpi.rank) <-
          Mpi.comm_agree ctx (if ctx.Mpi.rank = 1 then 0b110 else 0b011)
      end);
  Alcotest.(check int) "rank 1 agrees on the AND" 0b010 vals.(1);
  Alcotest.(check int) "rank 2 agrees on the AND" 0b010 vals.(2);
  Alcotest.(check int) "dead rank contributed nothing" (-1) vals.(0)

let tests =
  [
    Alcotest.test_case "send/recv roundtrip" `Quick send_recv_roundtrip;
    Alcotest.test_case "device buffers (CUDA-aware)" `Quick
      device_buffers_cuda_aware;
    Alcotest.test_case "tag matching" `Quick tags_match;
    Alcotest.test_case "same tag FIFO" `Quick same_tag_fifo;
    Alcotest.test_case "any source/any tag" `Quick any_source_any_tag;
    Alcotest.test_case "isend/irecv/waitall" `Quick isend_irecv_waitall;
    Alcotest.test_case "test polls" `Quick test_polls;
    Alcotest.test_case "sendrecv exchange" `Quick sendrecv_exchange;
    Alcotest.test_case "truncation detected" `Quick truncation_detected;
    Alcotest.test_case "short message into large recv" `Quick recv_smaller_ok;
    Alcotest.test_case "deadlock: crossed recvs" `Quick deadlock_two_recvs;
    Alcotest.test_case "deadlock: wait without send" `Quick
      wait_without_send_deadlocks;
    Alcotest.test_case "invalid rank" `Quick invalid_rank_rejected;
    Alcotest.test_case "barrier orders" `Quick barrier_orders;
    Alcotest.test_case "allreduce sum" `Quick allreduce_sum;
    Alcotest.test_case "allreduce max/min" `Quick allreduce_max_min;
    Alcotest.test_case "allreduce int" `Quick allreduce_int;
    Alcotest.test_case "bcast" `Quick bcast_root_to_all;
    Alcotest.test_case "reduce to root" `Quick reduce_to_root;
    Alcotest.test_case "collectives repeat" `Quick collectives_repeat;
    Alcotest.test_case "ssend rendezvous" `Quick ssend_rendezvous;
    Alcotest.test_case "crossed ssends deadlock" `Quick crossed_ssends_deadlock;
    Alcotest.test_case "deadlock diagnostic: crossed ssends name peers" `Quick
      deadlock_names_crossed_ssends;
    Alcotest.test_case "deadlock diagnostic: un-waited ssend" `Quick
      deadlock_names_unwaited_ssend;
    Alcotest.test_case "MPI_ERRORS_RETURN yields error codes" `Quick
      errors_return_gives_codes;
    Alcotest.test_case "crossed buffered sends fine" `Quick
      crossed_buffered_sends_fine;
    Alcotest.test_case "allgather rank order" `Quick allgather_orders_by_rank;
    Alcotest.test_case "gather only root" `Quick gather_only_root;
    Alcotest.test_case "scatter slices" `Quick scatter_slices;
    Alcotest.test_case "hooks fire in order" `Quick hooks_fire_in_order;
    Alcotest.test_case "datatypes" `Quick datatypes;
    Alcotest.test_case "dead peer: wait never hangs" `Quick
      wait_on_dead_peer_never_hangs;
    Alcotest.test_case "dead peer: waitall completes-with-error" `Quick
      waitall_with_dead_and_live_peers;
    Alcotest.test_case "dead peer: in-flight data delivered" `Quick
      in_flight_message_outlives_sender;
    Alcotest.test_case "ulfm: revoke wakes blocked peer" `Quick
      revoke_wakes_blocked_peer;
    Alcotest.test_case "ulfm: shrink renumbers survivors" `Quick
      shrink_builds_working_subcomm;
    Alcotest.test_case "ulfm: agree is AND of survivors" `Quick
      agree_is_bitwise_and_of_survivors;
    QCheck_alcotest.to_alcotest prop_matched_traffic;
  ]

let () = Alcotest.run "mpisim" [ ("mpisim", tests) ]
