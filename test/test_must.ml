(* Unit tests for the MUST runtime slice: blocking-call annotations,
   request fibers (Fig. 1 of the paper), and TypeART-backed datatype
   checks. These drive the interception handler directly, without the
   full scheduler. *)

module M = Must.Runtime
module H = Mpisim.Hooks
module T = Tsan.Detector
module Dt = Mpisim.Datatype

let with_clean f =
  Memsim.Heap.reset ();
  Typeart.Rt.reset ();
  Typeart.Rt.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Typeart.Rt.set_enabled false;
      Typeart.Rt.reset ();
      Memsim.Heap.reset ())
    f

let setup ?(check_types = true) () =
  let tsan = T.create () in
  let must = M.create ~tsan ~rank:0 ~check_types () in
  (tsan, must)

let dbl_buf count = Typeart.Pass.alloc Memsim.Space.Device Typeart.Typedb.F64 count

let mk_req kind buf count =
  Mpisim.Request.make ~kind ~buf ~count ~dt:Dt.double ~peer:1 ~tag:0 ~owner:0

(* --- annotations --------------------------------------------------------- *)

let send_marks_host_read () =
  with_clean @@ fun () ->
  let tsan, must = setup () in
  let buf = dbl_buf 8 in
  M.on_call must H.Pre (H.Send { buf; count = 8; dt = Dt.double; dst = 1; tag = 0 });
  let c = T.counters tsan in
  Alcotest.(check int) "read range" 1 c.Tsan.Counters.read_ranges;
  Alcotest.(check int) "bytes" 64 c.Tsan.Counters.read_bytes;
  Alcotest.(check int) "no fiber switch for blocking" 0
    c.Tsan.Counters.fiber_switches

let recv_marks_host_write () =
  with_clean @@ fun () ->
  let tsan, must = setup () in
  let buf = dbl_buf 8 in
  M.on_call must H.Pre (H.Recv { buf; count = 8; dt = Dt.double; src = 1; tag = 0 });
  Alcotest.(check int) "write bytes" 64 (T.counters tsan).Tsan.Counters.write_bytes

let isend_uses_fiber () =
  with_clean @@ fun () ->
  let tsan, must = setup () in
  let buf = dbl_buf 8 in
  let req = mk_req Mpisim.Request.Isend buf 8 in
  M.on_call must H.Pre (H.Isend { req });
  let c = T.counters tsan in
  Alcotest.(check int) "switched to fiber and back" 2 c.Tsan.Counters.fiber_switches;
  Alcotest.(check int) "released request key" 1 c.Tsan.Counters.happens_before;
  (* the concurrent region: a host write to the buffer now races *)
  T.write_range tsan ~addr:(Memsim.Ptr.addr buf) ~len:8;
  Alcotest.(check bool) "race in concurrent region" true (T.races_total tsan > 0)

let wait_closes_concurrent_region () =
  with_clean @@ fun () ->
  let tsan, must = setup () in
  let buf = dbl_buf 8 in
  let req = mk_req Mpisim.Request.Irecv buf 8 in
  M.on_call must H.Pre (H.Irecv { req });
  M.on_call must H.Post (H.Wait { req });
  T.write_range tsan ~addr:(Memsim.Ptr.addr buf) ~len:64;
  Alcotest.(check int) "clean after wait" 0 (T.races_total tsan)

let waitall_closes_all () =
  with_clean @@ fun () ->
  let tsan, must = setup () in
  let b1 = dbl_buf 4 and b2 = dbl_buf 4 in
  let r1 = mk_req Mpisim.Request.Irecv b1 4 in
  let r2 = mk_req Mpisim.Request.Irecv b2 4 in
  M.on_call must H.Pre (H.Irecv { req = r1 });
  M.on_call must H.Pre (H.Irecv { req = r2 });
  M.on_call must H.Post (H.Waitall { reqs = [ r1; r2 ] });
  T.write_range tsan ~addr:(Memsim.Ptr.addr b1) ~len:32;
  T.write_range tsan ~addr:(Memsim.Ptr.addr b2) ~len:32;
  Alcotest.(check int) "both closed" 0 (T.races_total tsan)

let successful_test_closes () =
  with_clean @@ fun () ->
  let tsan, must = setup () in
  let buf = dbl_buf 4 in
  let req = mk_req Mpisim.Request.Irecv buf 4 in
  M.on_call must H.Pre (H.Irecv { req });
  M.on_call must H.Post (H.Test { req; completed = false });
  T.read_range tsan ~addr:(Memsim.Ptr.addr buf) ~len:8;
  Alcotest.(check bool) "still open after failed test" true (T.races_total tsan > 0);
  let tsan2, must2 = setup () in
  let buf2 = dbl_buf 4 in
  let req2 = mk_req Mpisim.Request.Irecv buf2 4 in
  M.on_call must2 H.Pre (H.Irecv { req = req2 });
  M.on_call must2 H.Post (H.Test { req = req2; completed = true });
  T.read_range tsan2 ~addr:(Memsim.Ptr.addr buf2) ~len:8;
  Alcotest.(check int) "closed after successful test" 0 (T.races_total tsan2)

let two_pending_requests_race_each_other () =
  (* Two Irecvs into the same buffer: their fibers conflict. *)
  with_clean @@ fun () ->
  let tsan, must = setup () in
  let buf = dbl_buf 4 in
  let r1 = mk_req Mpisim.Request.Irecv buf 4 in
  let r2 = mk_req Mpisim.Request.Irecv buf 4 in
  M.on_call must H.Pre (H.Irecv { req = r1 });
  M.on_call must H.Pre (H.Irecv { req = r2 });
  Alcotest.(check bool) "overlapping irecvs race" true (T.races_total tsan > 0)

let allreduce_annotates_both () =
  with_clean @@ fun () ->
  let tsan, must = setup () in
  let sb = dbl_buf 4 and rb = dbl_buf 4 in
  M.on_call must H.Pre (H.Allreduce { sendbuf = sb; recvbuf = rb; count = 4; dt = Dt.double });
  let c = T.counters tsan in
  Alcotest.(check int) "read" 32 c.Tsan.Counters.read_bytes;
  Alcotest.(check int) "write" 32 c.Tsan.Counters.write_bytes

let bcast_root_vs_nonroot () =
  with_clean @@ fun () ->
  let tsan, must = setup () in
  let buf = dbl_buf 4 in
  (* rank 0 created with root=0: bcast at root reads *)
  M.on_call must H.Pre (H.Bcast { buf; count = 4; dt = Dt.double; root = 0 });
  Alcotest.(check int) "root reads" 32 (T.counters tsan).Tsan.Counters.read_bytes;
  let tsan1 = T.create () in
  let must1 = M.create ~tsan:tsan1 ~rank:1 ~check_types:false () in
  M.on_call must1 H.Pre (H.Bcast { buf; count = 4; dt = Dt.double; root = 0 });
  Alcotest.(check int) "non-root writes" 32
    (T.counters tsan1).Tsan.Counters.write_bytes

(* --- TypeART checks -------------------------------------------------------- *)

let type_mismatch_found () =
  with_clean @@ fun () ->
  let _, must = setup () in
  let buf = Typeart.Pass.alloc Memsim.Space.Device Typeart.Typedb.F32 8 in
  M.on_call must H.Pre (H.Send { buf; count = 4; dt = Dt.double; dst = 1; tag = 0 });
  match M.errors must with
  | [ { Must.Errors.kind = Must.Errors.Type_mismatch _; call = "MPI_Send"; _ } ] -> ()
  | l -> Alcotest.failf "expected one mismatch, got %d findings" (List.length l)

let overflow_found () =
  with_clean @@ fun () ->
  let _, must = setup () in
  let buf = dbl_buf 4 in
  M.on_call must H.Pre (H.Recv { buf; count = 9; dt = Dt.double; src = 1; tag = 0 });
  match M.errors must with
  | [ { Must.Errors.kind = Must.Errors.Buffer_overflow { have_bytes = 32; need_bytes = 72 }; _ } ] -> ()
  | l -> Alcotest.failf "expected one overflow, got %d" (List.length l)

let interior_overflow () =
  with_clean @@ fun () ->
  let _, must = setup () in
  let buf = dbl_buf 8 in
  let interior = Memsim.Ptr.add buf ~elt:8 6 in
  M.on_call must H.Pre
    (H.Send { buf = interior; count = 4; dt = Dt.double; dst = 1; tag = 0 });
  Alcotest.(check int) "flagged" 1 (List.length (M.errors must))

let untracked_buffer_flagged () =
  with_clean @@ fun () ->
  let _, must = setup () in
  (* raw allocation bypassing the TypeART pass *)
  let buf = Memsim.Heap.alloc Memsim.Space.Device 64 in
  M.on_call must H.Pre (H.Send { buf; count = 4; dt = Dt.double; dst = 1; tag = 0 });
  match M.errors must with
  | [ { Must.Errors.kind = Must.Errors.Unknown_allocation; _ } ] -> ()
  | l -> Alcotest.failf "expected unknown-allocation, got %d" (List.length l)

let correct_usage_no_findings () =
  with_clean @@ fun () ->
  let _, must = setup () in
  let buf = dbl_buf 8 in
  M.on_call must H.Pre (H.Send { buf; count = 8; dt = Dt.double; dst = 1; tag = 0 });
  Alcotest.(check int) "no findings" 0 (List.length (M.errors must))

let checks_disabled () =
  with_clean @@ fun () ->
  let _, must = setup ~check_types:false () in
  let buf = Typeart.Pass.alloc Memsim.Space.Device Typeart.Typedb.F32 8 in
  M.on_call must H.Pre (H.Send { buf; count = 99; dt = Dt.double; dst = 1; tag = 0 });
  Alcotest.(check int) "silent when disabled" 0 (List.length (M.errors must))

let error_pp_smoke () =
  with_clean @@ fun () ->
  let _, must = setup () in
  let buf = Typeart.Pass.alloc Memsim.Space.Device Typeart.Typedb.F32 8 in
  M.on_call must H.Pre (H.Send { buf; count = 20; dt = Dt.double; dst = 1; tag = 0 });
  List.iter
    (fun e ->
      let s = Fmt.str "%a" Must.Errors.pp e in
      Alcotest.(check bool) "mentions MUST" true
        (String.length s > 10 && String.sub s 0 5 = "MUST:"))
    (M.errors must)

let tests =
  [
    Alcotest.test_case "Send marks host read" `Quick send_marks_host_read;
    Alcotest.test_case "Recv marks host write" `Quick recv_marks_host_write;
    Alcotest.test_case "Isend uses a fiber" `Quick isend_uses_fiber;
    Alcotest.test_case "Wait closes region" `Quick wait_closes_concurrent_region;
    Alcotest.test_case "Waitall closes all" `Quick waitall_closes_all;
    Alcotest.test_case "Test closes on success only" `Quick
      successful_test_closes;
    Alcotest.test_case "overlapping Irecvs race" `Quick
      two_pending_requests_race_each_other;
    Alcotest.test_case "Allreduce annotates both" `Quick allreduce_annotates_both;
    Alcotest.test_case "Bcast root vs non-root" `Quick bcast_root_vs_nonroot;
    Alcotest.test_case "type mismatch" `Quick type_mismatch_found;
    Alcotest.test_case "count overflow" `Quick overflow_found;
    Alcotest.test_case "interior pointer overflow" `Quick interior_overflow;
    Alcotest.test_case "untracked buffer" `Quick untracked_buffer_flagged;
    Alcotest.test_case "correct usage clean" `Quick correct_usage_no_findings;
    Alcotest.test_case "checks disabled" `Quick checks_disabled;
    Alcotest.test_case "error pretty-print" `Quick error_pp_smoke;
  ]

let () = Alcotest.run "must" [ ("must", tests) ]
