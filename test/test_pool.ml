(* Tests for the domain pool, the parallel testsuite runner's
   determinism guarantee, and the machine-readable emitters
   (JSON / JUnit / benchdiff comparison logic). *)

(* --- Pool ------------------------------------------------------------- *)

let map_preserves_order () =
  let xs = List.init 100 Fun.id in
  let ys = Pool.map ~workers:4 (fun x -> x * x) xs in
  Alcotest.(check (list int)) "results in input order"
    (List.map (fun x -> x * x) xs)
    ys

let map_seq_degenerate () =
  let xs = [ 3; 1; 4; 1; 5 ] in
  Alcotest.(check (list int)) "workers:1 is List.map"
    (List.map succ xs)
    (Pool.map ~workers:1 succ xs)

exception Boom of int

let map_propagates_exception () =
  match Pool.map ~workers:3 (fun x -> if x = 7 then raise (Boom x) else x)
          (List.init 20 Fun.id)
  with
  | _ -> Alcotest.fail "expected Boom to propagate"
  | exception Boom 7 -> ()

let exclusively_drains_pool () =
  let p = Pool.create ~workers:4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      let busy = Atomic.make 0 in
      let violations = Atomic.make 0 in
      let tasks =
        List.init 40 (fun i () ->
            if i mod 5 = 0 then
              (* An exclusive section must observe every other worker
                 idle: no concurrent task inside its critical section. *)
              Pool.exclusively p (fun () ->
                  if Atomic.get busy <> 0 then Atomic.incr violations)
            else begin
              Atomic.incr busy;
              (* spin a little so tasks genuinely overlap *)
              let t = ref 0 in
              for k = 1 to 10_000 do
                t := !t + k
              done;
              ignore (Sys.opaque_identity !t);
              Atomic.decr busy
            end)
      in
      ignore (Pool.map_pool p (fun f -> f ()) tasks);
      Alcotest.(check int) "no task ran during an exclusive section" 0
        (Atomic.get violations))

let exclusively_returns_value () =
  let p = Pool.create ~workers:2 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      let r =
        Pool.map_pool p (fun x -> Pool.exclusively p (fun () -> x * 2)) [ 21 ]
      in
      Alcotest.(check (list int)) "value threaded through" [ 42 ] r)

(* --- Cancellable submissions and timeouts ------------------------------ *)

let with_pool workers f =
  let p = Pool.create ~workers in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let submit_cancellable_completes () =
  with_pool 2 (fun p ->
      let h = Pool.submit_cancellable p (fun ~cancelled:_ -> 21 * 2) in
      match Pool.await h with
      | `Done (Ok 42) -> ()
      | `Done (Ok n) -> Alcotest.failf "wrong value %d" n
      | `Done (Error e) -> Alcotest.failf "raised %s" (Printexc.to_string e)
      | `Cancelled -> Alcotest.fail "spuriously cancelled"
      | `Timeout -> Alcotest.fail "await without timeout returned `Timeout")

let submit_cancellable_records_exception () =
  with_pool 2 (fun p ->
      let h = Pool.submit_cancellable p (fun ~cancelled:_ -> raise (Boom 3)) in
      match Pool.await h with
      | `Done (Error (Boom 3)) -> ()
      | _ -> Alcotest.fail "expected Done (Error (Boom 3))")

let cancel_pending_never_runs () =
  with_pool 1 (fun p ->
      (* One worker, held hostage by a gate: the second submission must
         still be pending when we cancel it, so it must never run. *)
      let gate = Atomic.make false in
      let ran = Atomic.make false in
      let blocker =
        Pool.submit_cancellable p (fun ~cancelled:_ ->
            while not (Atomic.get gate) do
              Unix.sleepf 0.001
            done)
      in
      let victim =
        Pool.submit_cancellable p (fun ~cancelled:_ -> Atomic.set ran true)
      in
      Pool.cancel victim;
      Atomic.set gate true;
      (match Pool.await blocker with
      | `Done (Ok ()) -> ()
      | _ -> Alcotest.fail "blocker did not finish");
      (match Pool.await victim with
      | `Cancelled -> ()
      | `Done _ -> Alcotest.fail "cancelled-while-pending task ran"
      | `Timeout -> assert false);
      Alcotest.(check bool) "task body never executed" false (Atomic.get ran))

let cancel_running_task_cooperates () =
  with_pool 1 (fun p ->
      let started = Atomic.make false in
      let h =
        Pool.submit_cancellable p (fun ~cancelled ->
            Atomic.set started true;
            while not (cancelled ()) do
              Unix.sleepf 0.001
            done;
            7)
      in
      while not (Atomic.get started) do
        Unix.sleepf 0.001
      done;
      Pool.cancel h;
      (* A running task keeps its slot until it observes the probe; its
         result is still recorded. *)
      match Pool.await h with
      | `Done (Ok 7) -> ()
      | _ -> Alcotest.fail "running task's result was not recorded")

let await_timeout_fires () =
  with_pool 1 (fun p ->
      let release = Atomic.make false in
      let h =
        Pool.submit_cancellable p (fun ~cancelled ->
            while not (Atomic.get release || cancelled ()) do
              Unix.sleepf 0.001
            done)
      in
      (match Pool.await ~timeout_s:0.05 h with
      | `Timeout -> ()
      | _ -> Alcotest.fail "expected `Timeout");
      Atomic.set release true;
      match Pool.await h with
      | `Done (Ok ()) -> ()
      | _ -> Alcotest.fail "task did not finish after release")

let map_timeout_mixed () =
  with_pool 4 (fun p ->
      let items = [ `Fast 1; `Slow; `Fast 2; `Slow ] in
      let rs =
        Pool.map_timeout p ~timeout_s:0.5
          (fun ~cancelled -> function
            | `Fast x -> x * 10
            | `Slow ->
                while not (cancelled ()) do
                  Unix.sleepf 0.001
                done;
                -1)
          items
      in
      match rs with
      | [ Some (Ok 10); None; Some (Ok 20); None ] -> ()
      | _ ->
          Alcotest.failf "unexpected outcomes: [%s]"
            (String.concat ";"
               (List.map
                  (function
                    | Some (Ok n) -> string_of_int n
                    | Some (Error e) -> Printexc.to_string e
                    | None -> "None")
                  rs)))

(* The satellite property: a timed-out task can never corrupt a
   survivor's slot. Random mixes of fast tasks (some of which raise),
   and slow tasks that only end when cancelled at the deadline — every
   slot is either [None] or exactly the value/exception its own input
   produces, in input order. *)
let prop_map_timeout_slots =
  let gen = QCheck.(list_of_size Gen.(0 -- 8) (pair small_nat bool)) in
  QCheck.Test.make ~count:15
    ~name:"map_timeout: timed-out tasks never corrupt survivor slots" gen
    (fun items ->
      with_pool 3 (fun p ->
          let rs =
            Pool.map_timeout p ~timeout_s:0.3
              (fun ~cancelled (x, slow) ->
                if slow then begin
                  while not (cancelled ()) do
                    Unix.sleepf 0.001
                  done;
                  (* a poisoned value: must never surface in any slot *)
                  -1
                end
                else if x mod 5 = 0 then raise (Boom x)
                else x + 1)
              items
          in
          List.length rs = List.length items
          && List.for_all2
               (fun (x, slow) r ->
                 match r with
                 | None -> true (* timed out, or never got a worker *)
                 | Some (Ok v) -> (not slow) && x mod 5 <> 0 && v = x + 1
                 | Some (Error (Boom y)) -> (not slow) && x mod 5 = 0 && y = x
                 | Some (Error _) -> false)
               items rs))

(* --- Elastic resize ---------------------------------------------------- *)

let wait_alive p target =
  let rec go n =
    if Pool.alive p = target then ()
    else if n = 0 then
      Alcotest.failf "alive never reached %d (now %d)" target (Pool.alive p)
    else begin
      Unix.sleepf 0.002;
      go (n - 1)
    end
  in
  go 2500

let resize_grows_and_shrinks () =
  with_pool 1 (fun p ->
      Alcotest.(check int) "initial size" 1 (Pool.size p);
      Alcotest.(check int) "grow returns previous target" 1 (Pool.resize p 4);
      Alcotest.(check int) "target updated" 4 (Pool.size p);
      wait_alive p 4;
      (* work still lands correctly on the grown pool *)
      let xs = List.init 20 Fun.id in
      Alcotest.(check (list int)) "map_pool on grown pool"
        (List.map (fun x -> x * x) xs)
        (Pool.map_pool p (fun x -> x * x) xs);
      Alcotest.(check int) "shrink returns previous target" 4 (Pool.resize p 1);
      Alcotest.(check int) "target shrunk" 1 (Pool.size p);
      (* surplus workers retire at a task boundary, not mid-pool-life *)
      wait_alive p 1;
      Alcotest.(check (list int)) "map_pool on shrunk pool"
        (List.map succ xs)
        (Pool.map_pool p succ xs))

let resize_mid_job_finishes_it () =
  with_pool 2 (fun p ->
      (* occupy a worker, shrink under it: the running job must finish
         and its result must be recorded *)
      let started = Atomic.make false in
      let release = Atomic.make false in
      let h =
        Pool.submit_cancellable p (fun ~cancelled:_ ->
            Atomic.set started true;
            while not (Atomic.get release) do
              Unix.sleepf 0.001
            done;
            77)
      in
      while not (Atomic.get started) do
        Unix.sleepf 0.001
      done;
      Alcotest.(check int) "shrink under a running job" 2 (Pool.resize p 1);
      Atomic.set release true;
      (match Pool.await h with
      | `Done (Ok 77) -> ()
      | _ -> Alcotest.fail "job abandoned by the shrink");
      wait_alive p 1)

let resize_rejects_invalid () =
  let p = Pool.create ~workers:2 in
  (match Pool.resize p 0 with
  | _ -> Alcotest.fail "resize 0 accepted"
  | exception Invalid_argument _ -> ());
  Pool.shutdown p;
  match Pool.resize p 2 with
  | _ -> Alcotest.fail "resize after shutdown accepted"
  | exception Invalid_argument _ -> ()

(* Results are independent of any interleaved resize sequence. *)
let resize_result_independent () =
  with_pool 2 (fun p ->
      let expect = List.init 30 (fun x -> x * 3) in
      let hs =
        List.init 30 (fun x ->
            Pool.submit_cancellable p (fun ~cancelled:_ -> x * 3))
      in
      ignore (Pool.resize p 5);
      ignore (Pool.resize p 1);
      ignore (Pool.resize p 3);
      let got =
        List.map
          (fun h ->
            match Pool.await h with
            | `Done (Ok v) -> v
            | _ -> Alcotest.fail "task lost across resizes")
          hs
      in
      Alcotest.(check (list int)) "values survive resize storm" expect got)

(* --- Parallel testsuite determinism ----------------------------------- *)

(* Render everything observable about a verdict except wall time (the
   only field that legitimately differs between runs). *)
let render (v : Testsuite.Runner.verdict) =
  Fmt.str "%a // faults:[%s] // failures:[%s] // reports:[%s]"
    Testsuite.Runner.pp_verdict v
    (String.concat ";"
       (List.map
          (Fmt.str "%a" Faultsim.Injector.pp_decision)
          v.Testsuite.Runner.fault_log))
    (String.concat ";"
       (List.map
          (fun (rank, why) -> Fmt.str "%d:%s" rank why)
          v.Testsuite.Runner.failures))
    (String.concat ";"
       (List.map
          (fun (rank, r) -> Fmt.str "%d:%s" rank (Tsan.Report.to_string r))
          v.Testsuite.Runner.reports))

let fault_plan () =
  match
    Faultsim.Plan.parse_spec
      "cuda_malloc@1#1:fail,mpi_wait*5:hang,kernel_launch%0.2:fail"
  with
  | Ok (_, plan) -> plan
  | Error msg -> Alcotest.failf "fault spec did not parse: %s" msg

(* The tentpole property: sharding the matrix over any number of worker
   domains yields byte-identical verdicts to the sequential runner, for
   both the normal and the fault-injected matrix. *)
let parallel_matches_sequential =
  QCheck.Test.make ~count:6 ~name:"run_matrix -j N == sequential (N in 1..8)"
    (QCheck.int_range 1 8)
    (fun j ->
      let seq = List.map render (Testsuite.Runner.run_matrix ~j:1 ()) in
      let par = List.map render (Testsuite.Runner.run_matrix ~j ()) in
      let faults = Some (7, fault_plan ()) in
      let fseq = List.map render (Testsuite.Runner.run_matrix ?faults ~j:1 ()) in
      let fpar = List.map render (Testsuite.Runner.run_matrix ?faults ~j ()) in
      seq = par && fseq = fpar)

(* Hard failures must not erode the guarantee: a plan that kills ranks
   and loses messages still yields byte-identical verdicts AND reports
   (the full JSON document, post-mortems included) for -j 1 vs -j 8,
   across seeds. Wall time is the one legitimately nondeterministic
   field, so it is zeroed before rendering. *)
let hard_failure_plans_deterministic =
  QCheck.Test.make ~count:3
    ~name:"crash/drop plans: -j 8 == -j 1 across seeds"
    (QCheck.oneofl [ 7; 21; 42 ])
    (fun seed ->
      let plan =
        match
          Faultsim.Plan.parse_spec "mpi_recv@1#3:crash,mpi_send@0#2:drop"
        with
        | Ok (_, p) -> p
        | Error msg -> QCheck.Test.fail_reportf "plan did not parse: %s" msg
      in
      let faults = Some (seed, plan) in
      let strip (v : Testsuite.Runner.verdict) =
        { v with Testsuite.Runner.wall_s = 0. }
      in
      let doc vs =
        Reporting.Mjson.to_string
          (Testsuite.Emit.json ~seed ~mode:"eager" ~j:0 vs)
      in
      let seq =
        List.map strip (Testsuite.Runner.run_matrix ?faults ~j:1 ())
      in
      let par =
        List.map strip (Testsuite.Runner.run_matrix ?faults ~j:8 ())
      in
      List.map render seq = List.map render par && doc seq = doc par)

(* --- Mjson ------------------------------------------------------------- *)

let sample : Reporting.Mjson.t =
  let open Reporting.Mjson in
  Obj
    [
      ("schema", Str "t/1");
      ("ok", Bool true);
      ("none", Null);
      ("n", Int (-42));
      ("x", Float 1.5);
      ("s", Str "a \"quoted\"\nline\tand \\ slash");
      ("xs", List [ Int 1; Float 0.25; Str ""; List []; Obj [] ]);
    ]

let mjson_roundtrip () =
  let open Reporting.Mjson in
  (match of_string (to_string sample) with
  | Ok v -> Alcotest.(check bool) "compact roundtrip" true (v = sample)
  | Error msg -> Alcotest.failf "compact parse failed: %s" msg);
  match of_string (to_string_pretty sample) with
  | Ok v -> Alcotest.(check bool) "pretty roundtrip" true (v = sample)
  | Error msg -> Alcotest.failf "pretty parse failed: %s" msg

let mjson_rejects_garbage () =
  let open Reporting.Mjson in
  List.iter
    (fun s ->
      match of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

let mjson_accessors () =
  let open Reporting.Mjson in
  Alcotest.(check (option int)) "member+to_int" (Some (-42))
    (Option.bind (member "n" sample) to_int);
  Alcotest.(check (option string)) "missing member" None
    (Option.bind (member "nope" sample) to_str);
  Alcotest.(check (option (float 0.0))) "int reads as float" (Some (-42.))
    (Option.bind (member "n" sample) to_float)

(* --- JUnit & JSON emitters --------------------------------------------- *)

let two_verdicts () =
  match Testsuite.Cases.all () with
  | a :: b :: _ ->
      let va = Testsuite.Runner.run_case a in
      let vb = Testsuite.Runner.run_case b in
      (va, vb)
  | _ -> Alcotest.fail "testsuite has fewer than two cases"

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

let junit_emitter () =
  let va, vb = two_verdicts () in
  (* Force one failure so the failure element is exercised. *)
  let vb = { vb with Testsuite.Runner.pass = false } in
  let xml = Testsuite.Emit.junit [ va; vb ] in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Fmt.str "junit contains %s" sub) true
        (contains ~sub xml))
    [
      "<?xml version=\"1.0\"";
      "tests=\"2\"";
      "failures=\"1\"";
      "classname=\"CuSanTest\"";
      va.Testsuite.Runner.case.Testsuite.Cases.name;
      "<failure";
    ]

let json_emitter () =
  let va, vb = two_verdicts () in
  let doc = Testsuite.Emit.json ~seed:7 ~mode:"eager" ~j:3 [ va; vb ] in
  let open Reporting.Mjson in
  (* The emitted document must survive its own parser. *)
  (match of_string (to_string_pretty doc) with
  | Ok v -> Alcotest.(check bool) "self-parses" true (v = doc)
  | Error msg -> Alcotest.failf "emitted JSON does not parse: %s" msg);
  Alcotest.(check (option string)) "schema" (Some "cusan-tests/1")
    (Option.bind (member "schema" doc) to_str);
  Alcotest.(check (option int)) "workers" (Some 3)
    (Option.bind (member "workers" doc) to_int);
  Alcotest.(check (option int)) "total" (Some 2)
    (Option.bind (member "total" doc) to_int);
  Alcotest.(check (option int)) "cases"
    (Some 2)
    (Option.bind (member "cases" doc) to_list |> Option.map List.length)

(* A failing case's JUnit body carries every hostile byte a race report
   or a fault log can contain (quotes, angle brackets, backslashes,
   control characters). The emitter must keep the document well-formed —
   regression: attribute values went through %S, which wrapped the
   already-XML-escaped text in a second, OCaml-syntax escaping layer. *)

(* Strict reverse of the emitter's xml_escape: a raw '<' or '"', or an
   '&' that does not introduce a recognized entity, means the document
   was not properly escaped. *)
let xml_unescape s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then Some (Buffer.contents b)
    else
      match s.[i] with
      | '<' | '"' -> None
      | '&' -> (
          match String.index_from_opt s i ';' with
          | None -> None
          | Some j -> (
              let put c =
                Buffer.add_char b c;
                go (j + 1)
              in
              match String.sub s i (j - i + 1) with
              | "&lt;" -> put '<'
              | "&gt;" -> put '>'
              | "&amp;" -> put '&'
              | "&quot;" -> put '"'
              | "&apos;" -> put '\''
              | e -> (
                  match Scanf.sscanf_opt e "&#%d;" Fun.id with
                  | Some c when c >= 0 && c < 256 -> put (Char.chr c)
                  | _ -> None)))
      | c ->
          Buffer.add_char b c;
          go (i + 1)
  in
  go 0

(* Slice out the text between [start] (after its first occurrence) and
   the next occurrence of [stop]. *)
let between ~start ~stop s =
  let n = String.length s in
  let find pat from =
    let m = String.length pat in
    let rec at i =
      if i + m > n then None
      else if String.sub s i m = pat then Some i
      else at (i + 1)
    in
    at from
  in
  Option.bind (find start 0) (fun i ->
      let b = i + String.length start in
      Option.map
        (fun e -> String.sub s b (e - b))
        (find stop b))

let hostile_gen =
  QCheck.Gen.string_size ~gen:(QCheck.Gen.oneofl
      [ '<'; '>'; '&'; '"'; '\''; '\\'; '\n'; '\t'; 'a'; 'B'; ' '; '\x01'; ';'; '#' ])
    QCheck.Gen.(0 -- 30)

let prop_junit_roundtrips_hostile =
  QCheck.Test.make ~count:300 ~name:"junit escapes hostile strings once"
    (QCheck.make ~print:(Printf.sprintf "%S") hostile_gen)
    (fun s ->
      let xml =
        Reporting.Junit.to_string ~suite_name:"suite"
          [
            {
              Reporting.Junit.classname = "C";
              name = s;
              time_s = 0.;
              failure = Some (s, s);
            };
          ]
      in
      (* Scanning to the next raw quote / the literal </failure> tag is
         exactly what an XML parser does: if a quote or a tag leaked
         unescaped, the slice comes back truncated or unescapable. *)
      let name_ok =
        Option.bind (between ~start:"classname=\"C\" name=\"" ~stop:"\"" xml)
          xml_unescape
        = Some s
      in
      (* Sliced out of its tags the failure element is MSG, a quote, a
         closing angle bracket, then BODY: the first raw quote must end
         the message attribute. *)
      let failure_ok =
        match between ~start:"<failure message=\"" ~stop:"</failure>" xml with
        | None -> false
        | Some fe -> (
            match String.index_opt fe '"' with
            | None -> false
            | Some q ->
                let msg = String.sub fe 0 q in
                let rest_len = String.length fe - q - 1 in
                rest_len >= 1
                && fe.[q + 1] = '>'
                && xml_unescape msg = Some s
                && xml_unescape (String.sub fe (q + 2) (rest_len - 1)) = Some s)
      in
      name_ok && failure_ok)

let junit_escapes_once () =
  (* The regression pinned down: %S wrapped the already XML-escaped
     value in OCaml-syntax quotes and doubled its backslashes. *)
  let xml =
    Reporting.Junit.to_string ~suite_name:"s"
      [
        {
          Reporting.Junit.classname = "C";
          name = {|a\b"c|};
          time_s = 0.;
          failure = None;
        };
      ]
  in
  Alcotest.(check bool) "single escaping layer" true
    (contains ~sub:{|name="a\b&quot;c"|} xml);
  Alcotest.(check bool) "no OCaml-style backslash doubling" false
    (contains ~sub:{|a\\b|} xml)

(* --- Benchdiff comparison logic ---------------------------------------- *)

let cell key value = { Reporting.Benchcmp.key; value }

let benchcmp_thresholds () =
  let open Reporting.Benchcmp in
  let baseline = [ cell "a" 10.0; cell "b" 10.0; cell "c" 10.0; cell "gone" 1.0 ] in
  let run = [ cell "a" 12.0; cell "b" 13.0; cell "c" 5.0; cell "new" 99.0 ] in
  let outcomes = compare ~threshold_pct:25.0 ~baseline ~run in
  let verdicts =
    List.map
      (function
        | Ok_cell { key; _ } -> (key, "ok")
        | Regressed { key; _ } -> (key, "regressed")
        | Missing { key; _ } -> (key, "missing"))
      outcomes
  in
  Alcotest.(check (list (pair string string)))
    "outcome per baseline cell; run-only cells ignored"
    [
      ("a", "ok") (* +20% within threshold *);
      ("b", "regressed") (* +30% over threshold *);
      ("c", "ok") (* improvement never fails *);
      ("gone", "missing") (* vanished cell fails *);
    ]
    verdicts;
  Alcotest.(check bool) "any_failed" true (any_failed outcomes);
  Alcotest.(check bool) "clean run passes" false
    (any_failed (compare ~threshold_pct:25.0 ~baseline:[ cell "a" 2.0 ]
       ~run:[ cell "a" 2.2 ]))

(* Satellite of the benchdiff CLI contract: run cells the baseline has
   never heard of are surfaced by name (benchdiff turns a non-empty
   list into exit 2 with refresh guidance) instead of being silently
   ignored forever. *)
let benchcmp_unbaselined () =
  let open Reporting.Benchcmp in
  let baseline = [ cell "a" 1.0; cell "b" 2.0 ] in
  let run = [ cell "b" 2.0; cell "new1" 9.0; cell "new2" 3.0 ] in
  Alcotest.(check (list string))
    "new cells reported by name"
    [ "new1"; "new2" ]
    (List.map
       (fun c -> c.Reporting.Benchcmp.key)
       (unbaselined ~baseline ~run));
  Alcotest.(check (list string)) "covered runs report nothing" []
    (List.map
       (fun c -> c.Reporting.Benchcmp.key)
       (unbaselined ~baseline ~run:[ cell "a" 5.0 ]))

let benchcmp_cells_of_json () =
  let open Reporting.Mjson in
  let doc =
    Obj
      [
        ( "fig10",
          List
            [
              Obj
                [
                  ("app", Str "Jacobi");
                  ("flavor", Str "CuSan");
                  ("rel", Float 19.5);
                ];
            ] );
        ( "fig11",
          List
            [
              Obj
                [
                  ("app", Str "TeaLeaf");
                  ("flavor", Str "MUST & CuSan");
                  ("rel", Float 7.25);
                ];
            ] );
        ( "fig12",
          List [ Obj [ ("nx", Int 64); ("ny", Int 32); ("rel", Float 4.5) ] ] );
        ( "micro",
          List
            [
              Obj
                [ ("name", Str "tsan/write_range 4096B"); ("ns", Float 67.5) ];
            ] );
      ]
  in
  let cells = Reporting.Benchcmp.cells_of_json doc in
  Alcotest.(check (list (pair string (float 1e-9))))
    "keys and values extracted"
    [
      ("fig10/Jacobi/CuSan", 19.5);
      ("fig11/TeaLeaf/MUST & CuSan", 7.25);
      ("fig12/64x32", 4.5);
      ("micro/tsan/write_range 4096B", 67.5);
    ]
    (List.map
       (fun c -> (c.Reporting.Benchcmp.key, c.Reporting.Benchcmp.value))
       cells);
  (* --mode separates the ratio cells from the ns/op cells *)
  let keys mode =
    List.map
      (fun c -> c.Reporting.Benchcmp.key)
      (Reporting.Benchcmp.filter_mode mode cells)
  in
  Alcotest.(check (list string))
    "macro mode excludes micro cells"
    [ "fig10/Jacobi/CuSan"; "fig11/TeaLeaf/MUST & CuSan"; "fig12/64x32" ]
    (keys Reporting.Benchcmp.Macro);
  Alcotest.(check (list string))
    "micro mode keeps only micro cells"
    [ "micro/tsan/write_range 4096B" ]
    (keys Reporting.Benchcmp.Micro);
  Alcotest.(check int) "all mode keeps everything" 4
    (List.length (keys Reporting.Benchcmp.All))

(* Regression: fig11 (memory overhead) was invisible to the bench gate —
   cells_of_json only extracted fig10/fig12, so a run whose memory
   ratios exploded still passed benchdiff. A fig11-regressing artifact
   must now fail the comparison. *)
let benchcmp_gates_fig11 () =
  let open Reporting.Mjson in
  let artifact rel =
    Obj
      [
        ( "fig11",
          List
            [
              Obj
                [ ("app", Str "Jacobi"); ("flavor", Str "TSan"); ("rel", Float rel) ];
            ] );
      ]
  in
  let open Reporting.Benchcmp in
  let baseline = cells_of_json (artifact 10.0) in
  Alcotest.(check bool) "fig11 regression fails the gate" true
    (any_failed
       (compare ~threshold_pct:25.0 ~baseline
          ~run:(cells_of_json (artifact 20.0))));
  Alcotest.(check bool) "fig11 within threshold passes" false
    (any_failed
       (compare ~threshold_pct:25.0 ~baseline
          ~run:(cells_of_json (artifact 11.0))))

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick map_preserves_order;
          Alcotest.test_case "workers:1 degenerates" `Quick map_seq_degenerate;
          Alcotest.test_case "exceptions propagate" `Quick
            map_propagates_exception;
          Alcotest.test_case "exclusively drains pool" `Quick
            exclusively_drains_pool;
          Alcotest.test_case "exclusively returns value" `Quick
            exclusively_returns_value;
        ] );
      ( "cancellable",
        [
          Alcotest.test_case "completes" `Quick submit_cancellable_completes;
          Alcotest.test_case "records exception" `Quick
            submit_cancellable_records_exception;
          Alcotest.test_case "cancel pending never runs" `Quick
            cancel_pending_never_runs;
          Alcotest.test_case "cancel running cooperates" `Quick
            cancel_running_task_cooperates;
          Alcotest.test_case "await timeout fires" `Quick await_timeout_fires;
          Alcotest.test_case "map_timeout mixed" `Quick map_timeout_mixed;
          QCheck_alcotest.to_alcotest prop_map_timeout_slots;
        ] );
      ( "resize",
        [
          Alcotest.test_case "grows and shrinks" `Quick resize_grows_and_shrinks;
          Alcotest.test_case "running job finishes across shrink" `Quick
            resize_mid_job_finishes_it;
          Alcotest.test_case "rejects invalid targets" `Quick
            resize_rejects_invalid;
          Alcotest.test_case "results independent of resizes" `Quick
            resize_result_independent;
        ] );
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest parallel_matches_sequential;
          QCheck_alcotest.to_alcotest hard_failure_plans_deterministic;
        ] );
      ( "mjson",
        [
          Alcotest.test_case "roundtrip" `Quick mjson_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick mjson_rejects_garbage;
          Alcotest.test_case "accessors" `Quick mjson_accessors;
        ] );
      ( "emitters",
        [
          Alcotest.test_case "junit" `Quick junit_emitter;
          Alcotest.test_case "json" `Quick json_emitter;
          Alcotest.test_case "junit escapes once" `Quick junit_escapes_once;
          QCheck_alcotest.to_alcotest prop_junit_roundtrips_hostile;
        ] );
      ( "benchcmp",
        [
          Alcotest.test_case "thresholds" `Quick benchcmp_thresholds;
          Alcotest.test_case "unbaselined cells named" `Quick
            benchcmp_unbaselined;
          Alcotest.test_case "cells_of_json" `Quick benchcmp_cells_of_json;
          Alcotest.test_case "fig11 gated" `Quick benchcmp_gates_fig11;
        ] );
    ]
