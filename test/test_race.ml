(* Tests for the static intra-kernel race analysis: the symbolic linear
   forms, the barrier-aware phase splitting, the seeded ground-truth
   corpus, and — the load-bearing property — zero false negatives
   against the interpreter used as an oracle over hundreds of random
   barrier kernels. *)

module L = Cusan.Linform
module I = Cusan.Interval
module RA = Cusan.Race_analysis
module Corpus = Testsuite.Corpus

(* --- linear forms -------------------------------------------------------- *)

let linform_uniform_cancel () =
  (* tid + off vs tid + off: the launch-uniform symbolic part cancels
     under subtraction, which is what proves p[off + tid] race-free
     without knowing off. *)
  let f = L.add L.tid (L.sparam 1) in
  Alcotest.(check (option int)) "difference is exactly 0" (Some 0)
    (L.exact_const (L.sub f f));
  Alcotest.(check bool) "ntid-offset cancels too" true
    (L.exact_const (L.sub (L.add L.tid L.ntid) (L.add L.tid L.ntid)) = Some 0)

let linform_arith () =
  Alcotest.(check (option int)) "const fold" (Some 11)
    (L.exact_const (L.add (L.const 4) (L.const 7)));
  Alcotest.(check bool) "tid stays symbolic" true
    (L.exact_const L.tid = None && not (L.is_top L.tid));
  Alcotest.(check bool) "scale distributes" true
    (L.equal (L.scale 8 (L.add L.tid (L.const 1)))
       (L.add (L.scale 8 L.tid) (L.const 8)));
  Alcotest.(check bool) "tid * scalar param is Top" true
    (L.is_top (L.mul L.tid (L.sparam 0)));
  Alcotest.(check bool) "uniform knows tid" true
    (L.uniform (L.sparam 0) && not (L.uniform L.tid))

let linform_variation_bound () =
  (* A variant interval (a loop counter) admits per-instance variation;
     a launch-uniform unknown does not. The bound w is what separates
     "same unknown value in both instances" from "possibly different". *)
  let iv = I.of_bounds 0 5 in
  (match L.interval ~variant:true iv with
  | L.Lin l -> Alcotest.(check int) "variant width" 5 l.L.w
  | L.Top -> Alcotest.fail "variant interval is not Top");
  match L.interval ~variant:false iv with
  | L.Lin l -> Alcotest.(check int) "uniform unknown has w = 0" 0 l.L.w
  | L.Top -> Alcotest.fail "uniform interval is not Top"

let linform_rem () =
  (* (tid + c) mod m for constant m: non-negative result in [0, m-1],
     but no longer a function of tid alone -> full variation bound. *)
  match L.rem_ (L.add L.tid (L.const 1)) (L.const 4) with
  | L.Lin l ->
      Alcotest.(check bool) "range [0,3]" true
        (I.equal l.L.c (I.of_bounds 0 3) && I.is_const l.L.a);
      Alcotest.(check int) "variation bound 3" 3 l.L.w
  | L.Top -> Alcotest.fail "const modulus should stay bounded"

(* --- corpus classification ----------------------------------------------- *)

let classify (e : Corpus.entry) =
  match Kir.Validate.check_module e.Corpus.m with
  | exception Kir.Validate.Invalid _ -> Corpus.Invalid
  | () ->
      let races = RA.analyze e.Corpus.m ~entry:e.Corpus.entry in
      if RA.has_must races then Corpus.Must
      else if races <> [] then Corpus.May
      else Corpus.Clean

let corpus_classification () =
  List.iter
    (fun (e : Corpus.entry) ->
      Alcotest.(check string)
        (Fmt.str "corpus/%s" e.Corpus.name)
        (Corpus.expect_str e.Corpus.expect)
        (Corpus.expect_str (classify e)))
    Corpus.all

let divergent_barrier_rejected () =
  match Kir.Validate.check_module Corpus.divergent_barrier with
  | () -> Alcotest.fail "tid-divergent barrier accepted"
  | exception Kir.Validate.Invalid msg ->
      let contains sub s =
        let nl = String.length s and sl = String.length sub in
        let rec at i = i + sl <= nl && (String.sub s i sl = sub || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) "message names the barrier" true
        (contains "barrier" msg)

let app_suite_must_free () =
  (* The example/app device code must stay free of must-races — the
     same gate `kirlint` and CI enforce. *)
  List.iter
    (fun (m : Kir.Ir.modul) ->
      List.iter
        (fun entry ->
          let races = RA.analyze m ~entry in
          Alcotest.(check bool) (entry ^ " has no must-race") false
            (RA.has_must races))
        m.Kir.Ir.kernels)
    [
      Apps.Jacobi.device_module; Apps.Tealeaf.device_module;
      Apps.Pingpong.fill_src; Testsuite.Cases.device_module;
    ]

(* --- phased interpretation ----------------------------------------------- *)

let with_heap f =
  Memsim.Heap.reset ();
  Fun.protect ~finally:Memsim.Heap.reset f

let dev_alloc n = Memsim.Heap.alloc Memsim.Space.Device (n * 8)

let barrier_wave_semantics () =
  (* q[tid] = p[(tid+1) mod ntid] after a barrier: under wave execution
     every thread sees its neighbor's phase-0 write; under naive
     sequential execution thread t would read p[t+1] before thread t+1
     wrote it (the buffer holds a sentinel, so the difference shows). *)
  with_heap @@ fun () ->
  let grid = 8 in
  let pb = dev_alloc grid and qb = dev_alloc grid in
  for t = 0 to grid - 1 do
    Memsim.Access.raw_set_f64 pb t (-1.)
  done;
  Kir.Interp.run_kernel Corpus.two_phase_barrier ~name:"two_phase_barrier"
    ~args:[| VPtr pb; VPtr qb |] ~grid;
  for t = 0 to grid - 1 do
    Alcotest.(check (float 0.))
      (Fmt.str "q[%d] sees the neighbor's phase-0 write" t)
      (float ((t + 1) mod grid) *. 2.)
      (Memsim.Access.raw_get_f64 qb t)
  done

(* --- oracle property: zero false negatives ------------------------------- *)

(* Random barrier kernels over two f64 buffers. The generator keeps
   index expressions value-independent (no loads feeding indices or
   bounds), so the footprint of a thread is the same under any
   interleaving and a per-thread sequential replay is an exact oracle. *)

let grid = 4
let nelts = 64

type gstmt = Kir.Ir.stmt

let gen_idx ~loopvar : Kir.Ir.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let base =
    [
      (3, return Kir.Dsl.tid);
      (2, map (fun c -> Kir.Dsl.i c) (int_range 0 40));
      (3, map (fun c -> Kir.Dsl.(tid +. i c)) (int_range 0 8));
      (1, return Kir.Dsl.(tid *. i 2));
      (1, map (fun c -> Kir.Dsl.((tid +. i c) %. ntid)) (int_range 0 3));
    ]
  in
  frequency
    (if loopvar then (2, return (Kir.Dsl.v "l")) :: base else base)

let gen_value ~loopvar : Kir.Ir.expr QCheck.Gen.t =
  let open QCheck.Gen in
  frequency
    [
      (2, map (fun x -> Kir.Dsl.f (float_of_int x)) (int_range 0 9));
      (2,
       map2
         (fun b idx -> Kir.Dsl.(load (p b) idx))
         (int_range 0 1) (gen_idx ~loopvar));
      (1, return Kir.Dsl.(i2f tid));
    ]

let gen_store ~loopvar : gstmt QCheck.Gen.t =
  let open QCheck.Gen in
  map3
    (fun b idx v -> Kir.Dsl.store (Kir.Dsl.p b) idx v)
    (int_range 0 1) (gen_idx ~loopvar) (gen_value ~loopvar)

let gen_stmt : gstmt QCheck.Gen.t =
  let open QCheck.Gen in
  frequency
    [
      (5, gen_store ~loopvar:false);
      (2, return Kir.Dsl.barrier);
      (2,
       map2
         (fun k s -> Kir.Dsl.(if_ (tid ==. i k) [ s ] []))
         (int_range 0 (grid - 1))
         (gen_store ~loopvar:false));
      (1,
       map3
         (fun lo n s -> Kir.Dsl.(for_ "l" (i lo) (i (lo + n)) [ s ]))
         (int_range 0 10) (int_range 1 5) (gen_store ~loopvar:true));
    ]

let gen_kernel : Kir.Ir.modul QCheck.Gen.t =
  let open QCheck.Gen in
  map
    (fun body ->
      Kir.Dsl.(modul ~kernels:[ "k" ] [ func "k" [ ptr "a"; ptr "b" ] body ]))
    (list_size (int_range 2 6) gen_stmt)

let pp_kernel (m : Kir.Ir.modul) =
  Fmt.str "%a" (Fmt.list Kir.Ir.pp_func) m.Kir.Ir.funcs

(* Per-thread phase-tagged footprint, replayed one thread at a time. *)
let thread_footprint m args ~tid =
  let phase = ref 0 in
  let acc = ref [] in
  let record w p ~bytes =
    acc := (!phase, Memsim.Ptr.addr p, bytes, w) :: !acc
  in
  let tracer =
    { Kir.Interp.on_read = record false; on_write = record true }
  in
  Kir.Interp.run_thread ~tracer
    ~on_barrier:(fun () -> incr phase)
    m ~name:"k" ~args ~tid ~ntid:grid;
  !acc

let overlap (a1, n1) (a2, n2) = a1 < a2 + n2 && a2 < a1 + n1

let oracle_has_race footprints =
  let n = Array.length footprints in
  let race = ref false in
  for t = 0 to n - 1 do
    for t' = t + 1 to n - 1 do
      List.iter
        (fun (ph1, a1, n1, w1) ->
          List.iter
            (fun (ph2, a2, n2, w2) ->
              if ph1 = ph2 && (w1 || w2) && overlap (a1, n1) (a2, n2) then
                race := true)
            footprints.(t'))
        footprints.(t)
    done
  done;
  !race

let prop_no_false_negatives =
  QCheck.Test.make
    ~name:"static analysis misses no interpreter-visible intra-kernel race"
    ~count:600
    (QCheck.make ~print:pp_kernel gen_kernel)
    (fun m ->
      Kir.Validate.check_module m;
      with_heap @@ fun () ->
      let args =
        [| Kir.Interp.VPtr (dev_alloc nelts); VPtr (dev_alloc nelts) |]
      in
      let footprints =
        Array.init grid (fun tid -> thread_footprint m args ~tid)
      in
      if oracle_has_race footprints then RA.analyze m ~entry:"k" <> []
      else true)

(* --- registration -------------------------------------------------------- *)

let tests =
  [
    Alcotest.test_case "linform: uniform offsets cancel" `Quick
      linform_uniform_cancel;
    Alcotest.test_case "linform: arithmetic" `Quick linform_arith;
    Alcotest.test_case "linform: variation bound" `Quick
      linform_variation_bound;
    Alcotest.test_case "linform: mod const" `Quick linform_rem;
    Alcotest.test_case "corpus classification" `Quick corpus_classification;
    Alcotest.test_case "divergent barrier rejected" `Quick
      divergent_barrier_rejected;
    Alcotest.test_case "app suite must-free" `Quick app_suite_must_free;
    Alcotest.test_case "barrier wave semantics" `Quick barrier_wave_semantics;
    QCheck_alcotest.to_alcotest prop_no_false_negatives;
  ]

let () = Alcotest.run "race" [ ("race-analysis", tests) ]
