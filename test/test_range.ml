(* Tests for the launch-time access-range analysis (the sound
   implementation of the paper's Section VI-D optimization): interval
   arithmetic, per-kernel range derivation, soundness against the
   interpreter, and the end-to-end effect on race verdicts. *)

module I = Cusan.Interval
module RA = Cusan.Range_analysis
module R = Harness.Run
module Dev = Cudasim.Device
module Mem = Cudasim.Memory

(* --- interval arithmetic ------------------------------------------------ *)

let iv lo hi = I.of_bounds lo hi

let interval_basics () =
  Alcotest.(check bool) "const" true (I.equal (I.const 5) (iv 5 5));
  Alcotest.(check bool) "add" true (I.equal (I.add (iv 1 3) (iv 10 20)) (iv 11 23));
  Alcotest.(check bool) "sub" true (I.equal (I.sub (iv 1 3) (iv 1 2)) (iv (-1) 2));
  Alcotest.(check bool) "mul signs" true
    (I.equal (I.mul (iv (-2) 3) (iv 4 5)) (iv (-10) 15));
  Alcotest.(check bool) "join" true (I.equal (I.join (iv 0 2) (iv 5 9)) (iv 0 9))

let interval_saturation () =
  let top = I.top in
  Alcotest.(check bool) "add inf" true (I.is_top (I.add top (iv 1 1)));
  Alcotest.(check bool) "mul big saturates" true
    ((I.mul (iv max_int max_int) (iv 2 2)).I.hi = max_int);
  Alcotest.(check bool) "neg top" true (I.is_top (I.neg top))

let interval_div_rem () =
  Alcotest.(check bool) "div by const" true
    (I.equal (I.div (iv 10 21) (I.const 10)) (iv 1 2));
  Alcotest.(check bool) "div by range = top" true
    (I.is_top (I.div (iv 0 10) (iv 1 2)));
  Alcotest.(check bool) "rem inside" true
    (I.equal (I.rem (iv 2 5) (I.const 8)) (iv 2 5));
  Alcotest.(check bool) "rem wraps" true
    (I.equal (I.rem (iv 0 100) (I.const 8)) (iv 0 7));
  Alcotest.(check bool) "rem negative operand" true
    (I.equal (I.rem (iv (-3) 100) (I.const 8)) (iv (-7) 7))

(* Truncated division by a constant, across every sign combination of
   the dividend range; a negative divisor swaps the bounds. *)
let interval_div_signs () =
  Alcotest.(check bool) "pos range / neg const" true
    (I.equal (I.div (iv 6 12) (I.const (-3))) (iv (-4) (-2)));
  Alcotest.(check bool) "mixed range / neg const" true
    (I.equal (I.div (iv (-6) 7) (I.const (-2))) (iv (-3) 3));
  Alcotest.(check bool) "neg range / neg const" true
    (I.equal (I.div (iv (-15) (-5)) (I.const (-5))) (iv 1 3));
  Alcotest.(check bool) "neg range / pos const" true
    (I.equal (I.div (iv (-7) (-3)) (I.const 2)) (iv (-3) (-1)));
  Alcotest.(check bool) "div by zero = top" true
    (I.is_top (I.div (iv 1 2) (I.const 0)));
  Alcotest.(check bool) "top / neg const stays top" true
    (I.is_top (I.div I.top (I.const (-4))))

let prop_div_sound =
  QCheck.Test.make ~name:"Interval.div contains x/q for all x in range"
    ~count:500
    QCheck.(
      triple (int_range (-1000) 1000) (int_range (-1000) 1000)
        (int_range (-20) 20))
    (fun (a, b, q) ->
      QCheck.assume (q <> 0);
      let lo = min a b and hi = max a b in
      let d = I.div (iv lo hi) (I.const q) in
      List.for_all
        (fun x ->
          let r = x / q in
          r >= d.I.lo && r <= d.I.hi)
        [ lo; hi; (lo + hi) / 2; min hi (max lo 0) ])

let interval_widen () =
  Alcotest.(check bool) "stable stays" true
    (I.equal (I.widen (iv 0 5) (iv 0 5)) (iv 0 5));
  let w = I.widen (iv 0 5) (iv 0 9) in
  Alcotest.(check bool) "growing hi -> +oo" true (w.I.hi = max_int && w.I.lo = 0)

(* --- launch-time summaries ----------------------------------------------- *)

let summarize m entry args grid =
  match RA.analyze_launch m ~entry ~args ~grid with
  | Some s -> s
  | None -> Alcotest.fail "kernel not found"

let byte_range (a : RA.access) kind =
  match (kind, a.RA.read, a.RA.written) with
  | `Read, Some r, _ -> Some (r.I.lo, r.I.hi)
  | `Write, _, Some w -> Some (w.I.lo, w.I.hi)
  | `Read, None, _ | `Write, _, None -> None

let dev_ptr n =
  Kir.Interp.VPtr (Memsim.Heap.alloc Memsim.Space.Device (n * 8))

(* The pack kernel: dst[tid] = src[row_off + tid] — the pattern whose
   precise range is a single row out of a whole domain. *)
let pack_module =
  Kir.Dsl.(
    modul ~kernels:[ "pack" ]
      [
        func "pack"
          [ ptr "dst"; ptr "src"; scalar "off"; scalar "n" ]
          [ if_ (tid <. p 3) [ store (p 0) tid (load (p 1) (p 2 +. tid)) ] [] ];
      ])

let pack_kernel_row_range () =
  Memsim.Heap.reset ();
  let s =
    summarize pack_module "pack"
      [| dev_ptr 16; dev_ptr 4096; VInt 1024; VInt 16 |]
      16
  in
  Alcotest.(check bool) "precise" true (not s.RA.imprecise.(1));
  Alcotest.(check (option (pair int int))) "dst writes its 16 elems"
    (Some (0, 127))
    (byte_range s.RA.per_param.(0) `Write);
  Alcotest.(check (option (pair int int))) "src reads one row"
    (Some (1024 * 8, (1024 * 8) + 127))
    (byte_range s.RA.per_param.(1) `Read);
  Alcotest.(check (option (pair int int))) "src not written" None
    (byte_range s.RA.per_param.(1) `Write);
  Memsim.Heap.reset ()

let loop_accumulator_widens () =
  (* s grows every iteration: the fixpoint must widen it, making the
     store range unbounded above -> clipped to the extent, not missed. *)
  Memsim.Heap.reset ();
  let m =
    Kir.Dsl.(
      modul ~kernels:[ "k" ]
        [
          func "k"
            [ ptr "a"; scalar "n" ]
            [
              let_ "s" (i 0);
              for_ "i" (i 0) (p 1)
                [ store (p 0) (v "s") (f 1.); let_ "s" (v "s" +. i 2) ];
            ];
        ])
  in
  let s = summarize m "k" [| dev_ptr 64; VInt 10 |] 1 in
  match byte_range s.RA.per_param.(0) `Write with
  | Some (lo, hi) ->
      Alcotest.(check int) "lower bound exact" 0 lo;
      Alcotest.(check bool) "upper widened" true (hi = max_int || hi >= 18 * 8)
  | None ->
      Alcotest.(check bool) "or imprecise fallback" true s.RA.imprecise.(0);
      Memsim.Heap.reset ()

let data_dependent_index_imprecise () =
  Memsim.Heap.reset ();
  let m =
    Kir.Dsl.(
      modul ~kernels:[ "k" ]
        [
          func "k"
            [ ptr "a"; ptr "idx" ]
            [ store (p 0) (f2i (load (p 1) tid)) (f 1.) ];
        ])
  in
  let s = summarize m "k" [| dev_ptr 64; dev_ptr 64 |] 4 in
  Alcotest.(check bool) "a imprecise" true s.RA.imprecise.(0);
  Alcotest.(check bool) "idx reads precisely" true (not s.RA.imprecise.(1));
  Memsim.Heap.reset ()

let nested_call_ranges () =
  Memsim.Heap.reset ();
  let m =
    Kir.Dsl.(
      modul ~kernels:[ "k" ]
        [
          func "helper" [ ptr "x"; scalar "i" ] [ store (p 0) (p 1 +. i 1) (f 0.) ];
          func "k" [ ptr "a" ] [ call "helper" [ p 0 +@ i 2; tid ] ];
        ])
  in
  let s = summarize m "k" [| dev_ptr 64 |] 4 in
  (* helper writes x[i+1] with x = a+2 elems, i = tid in [0,3]:
     bytes [ (2+1)*8, (2+4)*8 + 7 ] = [24, 55] *)
  Alcotest.(check (option (pair int int))) "call-chain range" (Some (24, 55))
    (byte_range s.RA.per_param.(0) `Write);
  Memsim.Heap.reset ()

let grid_bounds_flow_through_tid () =
  Memsim.Heap.reset ();
  let m =
    Kir.Dsl.(
      modul ~kernels:[ "k" ]
        [ func "k" [ ptr "a" ] [ store (p 0) (tid *. i 2) (f 0.) ] ])
  in
  let s = summarize m "k" [| dev_ptr 64 |] 8 in
  Alcotest.(check (option (pair int int))) "strided range" (Some (0, 119))
    (byte_range s.RA.per_param.(0) `Write);
  Memsim.Heap.reset ()

(* Soundness: the analyzed byte range contains every byte the
   interpreter actually touches, on random kernels. *)
let gen_kernel =
  let open QCheck.Gen in
  let idx =
    oneofl
      Kir.Dsl.
        [ tid; tid %. i 8; (tid *. i 2) %. i 8; i 3; v "j"; p 2 +. tid; tid /. i 2 ]
  in
  let target = oneofl Kir.Dsl.[ p 0; p 1; p 0 +@ i 2 ] in
  let stmt =
    oneof
      [
        (let* t = target and* ix = idx in
         return (Kir.Dsl.store t ix (Kir.Dsl.f 1.)));
        (let* t = target and* ix = idx in
         return (Kir.Dsl.let_ "x" (Kir.Dsl.load t ix)));
      ]
  in
  let* body = list_size (1 -- 5) stmt in
  let* in_loop = bool in
  return
    Kir.Dsl.(
      modul ~kernels:[ "k" ]
        [
          func "k"
            [ ptr "a"; ptr "b"; scalar "off" ]
            (let_ "j" (i 1)
            :: (if in_loop then [ for_ "j" (i 0) (i 3) body ] else body));
        ])

let prop_ranges_sound =
  QCheck.Test.make ~name:"precise ranges contain interpreter footprint"
    ~count:300
    (QCheck.make
       ~print:(fun m ->
         Fmt.str "%a" (Fmt.list Kir.Ir.pp_func) m.Kir.Ir.funcs)
       gen_kernel)
    (fun m ->
      Memsim.Heap.reset ();
      let a = Memsim.Heap.alloc Memsim.Space.Device 256 in
      let b = Memsim.Heap.alloc Memsim.Space.Device 256 in
      let args = [| Kir.Interp.VPtr a; VPtr b; VInt 2 |] in
      let grid = 6 in
      let s = Option.get (RA.analyze_launch m ~entry:"k" ~args ~grid) in
      (* record the real footprint as byte offsets per arg *)
      let touched = [| ref []; ref [] |] in
      let record p ~bytes =
        let i = if Memsim.Ptr.addr p >= Memsim.Ptr.addr b then 1 else 0 in
        let base = if i = 1 then Memsim.Ptr.addr b else Memsim.Ptr.addr a in
        let off = Memsim.Ptr.addr p - base in
        touched.(i) := (off, off + bytes - 1) :: !(touched.(i))
      in
      let tracer =
        { Kir.Interp.on_read = (fun p ~bytes -> record p ~bytes);
          on_write = (fun p ~bytes -> record p ~bytes) }
      in
      Kir.Interp.run_kernel ~tracer m ~name:"k" ~args ~grid;
      Memsim.Heap.reset ();
      let sound i =
        List.for_all
          (fun (lo, hi) ->
            s.RA.imprecise.(i)
            ||
            let acc = s.RA.per_param.(i) in
            let any =
              match (acc.RA.read, acc.RA.written) with
              | None, None -> None
              | Some r, None -> Some r
              | None, Some w -> Some w
              | Some r, Some w -> Some (I.join r w)
            in
            match any with
            | None -> false
            | Some iv -> iv.I.lo <= lo && hi <= iv.I.hi)
          !(touched.(i))
      in
      sound 0 && sound 1)

(* --- end-to-end: false-positive removal ---------------------------------- *)

(* Two kernels writing DISJOINT halves of one buffer from two
   non-blocking streams: whole-allocation annotation (the paper's
   approach) reports a false race; precise ranges do not. *)
let halves_app : R.app =
 fun env ->
  let dev = env.R.dev in
  let half =
    env.R.compile
      (Cudasim.Kernel.make
         ~kir:
           Kir.Dsl.(
             ( modul ~kernels:[ "half" ]
                 [
                   func "half"
                     [ ptr "buf"; scalar "base"; scalar "n" ]
                     [
                       if_ (tid <. p 2)
                         [ store (p 0) (p 1 +. tid) (i2f tid) ]
                         [];
                     ];
                 ],
               "half" ))
         "half")
  in
  let buf = Mem.cuda_malloc dev ~ty:Typeart.Typedb.F64 ~count:64 in
  let s1 = Dev.stream_create ~flags:Dev.Non_blocking dev in
  let s2 = Dev.stream_create ~flags:Dev.Non_blocking dev in
  Dev.launch dev half ~grid:32 ~args:[| VPtr buf; VInt 0; VInt 32 |] ~stream:s1 ();
  Dev.launch dev half ~grid:32 ~args:[| VPtr buf; VInt 32; VInt 32 |] ~stream:s2 ();
  Dev.device_synchronize dev;
  Mem.free dev buf

let whole_mode_false_positive () =
  let res = R.run ~nranks:1 ~flavor:Harness.Flavor.Cusan halves_app in
  Alcotest.(check bool) "whole-allocation annotation flags it" true
    (R.has_races res)

let precise_mode_clean () =
  let res =
    R.run ~nranks:1 ~annotation:Cusan.Runtime.Precise
      ~flavor:Harness.Flavor.Cusan halves_app
  in
  Alcotest.(check int) "precise ranges: disjoint halves are clean" 0
    (List.length res.R.races)

let precise_mode_keeps_real_races () =
  (* The full correctness testsuite must classify identically under
     precise annotation: real races touch the communicated bytes. *)
  let verdicts = Testsuite.Runner.run_all ~annotation:Cusan.Runtime.Precise () in
  List.iter
    (fun v ->
      if not v.Testsuite.Runner.pass then
        Alcotest.failf "%s" (Fmt.str "%a" Testsuite.Runner.pp_verdict v))
    verdicts

let precise_tracks_fewer_bytes () =
  let cfg flavor annotation =
    let c = Apps.Jacobi.config ~nx:64 ~ny:64 ~iters:10 ~norm_every:10 ~nranks:2 () in
    R.run ~nranks:2 ?annotation ~flavor (Apps.Jacobi.app c)
  in
  let whole = cfg Harness.Flavor.Cusan None in
  let precise = cfg Harness.Flavor.Cusan (Some Cusan.Runtime.Precise) in
  Alcotest.(check bool) "still clean" false (R.has_races precise);
  Alcotest.(check bool) "not more bytes than whole-allocation" true
    (precise.R.tracked_write_bytes <= whole.R.tracked_write_bytes)

let tests =
  [
    Alcotest.test_case "interval basics" `Quick interval_basics;
    Alcotest.test_case "interval saturation" `Quick interval_saturation;
    Alcotest.test_case "interval div/rem" `Quick interval_div_rem;
    Alcotest.test_case "interval div signs" `Quick interval_div_signs;
    QCheck_alcotest.to_alcotest prop_div_sound;
    Alcotest.test_case "interval widen" `Quick interval_widen;
    Alcotest.test_case "pack kernel row range" `Quick pack_kernel_row_range;
    Alcotest.test_case "loop accumulator widens" `Quick loop_accumulator_widens;
    Alcotest.test_case "data-dependent index imprecise" `Quick
      data_dependent_index_imprecise;
    Alcotest.test_case "nested call ranges" `Quick nested_call_ranges;
    Alcotest.test_case "tid bounds" `Quick grid_bounds_flow_through_tid;
    QCheck_alcotest.to_alcotest prop_ranges_sound;
    Alcotest.test_case "whole mode: false positive on halves" `Quick
      whole_mode_false_positive;
    Alcotest.test_case "precise mode: halves clean" `Quick precise_mode_clean;
    Alcotest.test_case "precise mode: testsuite still 100%" `Quick
      precise_mode_keeps_real_races;
    Alcotest.test_case "precise tracks fewer bytes" `Quick
      precise_tracks_fewer_bytes;
  ]

let () = Alcotest.run "range" [ ("range-analysis", tests) ]
