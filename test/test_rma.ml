(* Tests for MPI one-sided communication (RMA) and MUST's RMA race
   detection: data movement, window bounds, and the epoch/fence race
   model (local accesses during an exposure epoch, origin buffer reuse,
   concurrent Put/Get/Accumulate). *)

module R = Harness.Run
module F = Harness.Flavor
module Mpi = Mpisim.Mpi
module Dt = Mpisim.Datatype
module A = Memsim.Access

let f64 = Typeart.Typedb.F64

let run ?(flavor = F.Must) ?(nranks = 2) app = R.run ~nranks ~flavor app

let alloc ?(tag = "w") env n =
  ignore env;
  Typeart.Pass.alloc ~tag Memsim.Space.Host_pageable f64 n

(* --- data movement ------------------------------------------------------- *)

let put_moves_data () =
  let seen = ref 0. in
  let app (env : R.env) =
    let ctx = env.R.mpi in
    let wbuf = alloc env 8 in
    let win = Mpi.win_create ctx ~buf:wbuf ~bytes:64 in
    Mpi.win_fence ctx win;
    if ctx.Mpi.rank = 0 then begin
      let src = alloc ~tag:"src" env 4 in
      List.iteri (A.raw_set_f64 src) [ 1.; 2.; 3.; 4. ];
      Mpi.put ctx win ~buf:src ~count:4 ~dt:Dt.double ~target:1 ~disp:2
    end;
    Mpi.win_fence ctx win;
    if ctx.Mpi.rank = 1 then seen := A.get_f64 wbuf 3;
    Mpi.win_free ctx win
  in
  let res = run app in
  Alcotest.(check (float 0.)) "put landed at disp+1" 2. !seen;
  Alcotest.(check int) "no races" 0 (List.length res.R.races)

let get_moves_data () =
  let seen = ref 0. in
  let app (env : R.env) =
    let ctx = env.R.mpi in
    let wbuf = alloc env 8 in
    if ctx.Mpi.rank = 1 then A.set_f64 wbuf 5 42.;
    let win = Mpi.win_create ctx ~buf:wbuf ~bytes:64 in
    Mpi.win_fence ctx win;
    if ctx.Mpi.rank = 0 then begin
      let dst = alloc ~tag:"dst" env 1 in
      Mpi.get ctx win ~buf:dst ~count:1 ~dt:Dt.double ~target:1 ~disp:5;
      Mpi.win_fence ctx win;
      seen := A.get_f64 dst 0
    end
    else Mpi.win_fence ctx win;
    Mpi.win_free ctx win
  in
  let res = run app in
  Alcotest.(check (float 0.)) "got target value" 42. !seen;
  Alcotest.(check int) "no races" 0 (List.length res.R.races)

let accumulate_sums () =
  let seen = ref 0. in
  let app (env : R.env) =
    let ctx = env.R.mpi in
    let wbuf = alloc env 4 in
    let win = Mpi.win_create ctx ~buf:wbuf ~bytes:32 in
    Mpi.win_fence ctx win;
    (* every rank (incl. the target itself) accumulates 1.5 into rank
       1's slot 0: concurrent same-op accumulates are legal *)
    let c = alloc ~tag:"c" env 1 in
    A.raw_set_f64 c 0 1.5;
    Mpi.accumulate ctx win ~buf:c ~count:1 ~dt:Dt.double ~op:Mpi.Sum ~target:1
      ~disp:0;
    Mpi.win_fence ctx win;
    if ctx.Mpi.rank = 1 then seen := A.get_f64 wbuf 0;
    Mpi.win_free ctx win
  in
  let res = run ~nranks:3 app in
  Alcotest.(check (float 1e-12)) "3 x 1.5" 4.5 !seen;
  Alcotest.(check int) "concurrent accumulates legal" 0
    (List.length res.R.races)

(* --- bounds and lifecycle -------------------------------------------------- *)

let put_out_of_bounds () =
  let app (env : R.env) =
    let ctx = env.R.mpi in
    let wbuf = alloc env 4 in
    let win = Mpi.win_create ctx ~buf:wbuf ~bytes:32 in
    Mpi.win_fence ctx win;
    if ctx.Mpi.rank = 0 then begin
      let src = alloc ~tag:"src" env 4 in
      Mpi.put ctx win ~buf:src ~count:4 ~dt:Dt.double ~target:1 ~disp:2
    end;
    Mpi.win_fence ctx win
  in
  (* The harness captures the failure with rank provenance instead of
     letting it escape; the survivor is left blocked on the dead rank's
     missing fence contribution, like a real MPI job. *)
  let res = run app in
  match res.R.failures with
  | [ (0, why) ] ->
      Alcotest.(check bool) "classified as MPI_ERR_RANGE" true
        (String.length why >= 13 && String.sub why 0 13 = "MPI_ERR_RANGE");
      Alcotest.(check bool) "peer blocked on dead rank" true
        (res.R.deadlock <> None)
  | l -> Alcotest.failf "expected rank 0 failure, got %d" (List.length l)

let freed_window_rejected () =
  let app (env : R.env) =
    let ctx = env.R.mpi in
    let wbuf = alloc env 4 in
    let win = Mpi.win_create ctx ~buf:wbuf ~bytes:32 in
    Mpi.win_free ctx win;
    Mpi.win_fence ctx win
  in
  let res = run app in
  let died_with_err_win =
    List.filter
      (fun (_, why) ->
        String.length why >= 11 && String.sub why 0 11 = "MPI_ERR_WIN")
      res.R.failures
  in
  Alcotest.(check int) "both ranks report MPI_ERR_WIN" 2
    (List.length died_with_err_win)

(* --- race model -------------------------------------------------------------- *)

(* Shared skeleton: rank 0 puts into rank 1's window during epoch 1;
   [target_epoch1] runs on rank 1 inside that epoch, [target_epoch2]
   after the closing fence. *)
let put_program ?(origin_epoch1 = fun _ _ -> ()) ?(target_epoch1 = fun _ _ -> ())
    ?(target_epoch2 = fun _ _ -> ()) () : R.app =
 fun env ->
  let ctx = env.R.mpi in
  let wbuf = alloc env 8 in
  let win = Mpi.win_create ctx ~buf:wbuf ~bytes:64 in
  Mpi.win_fence ctx win;
  if ctx.Mpi.rank = 0 then begin
    let src = alloc ~tag:"src" env 8 in
    Mpi.put ctx win ~buf:src ~count:8 ~dt:Dt.double ~target:1 ~disp:0;
    origin_epoch1 env src
  end
  else target_epoch1 env wbuf;
  Mpi.win_fence ctx win;
  if ctx.Mpi.rank = 1 then target_epoch2 env wbuf;
  Mpi.win_free ctx win

let read_after_fence_clean () =
  let res =
    run (put_program ~target_epoch2:(fun _ b -> ignore (A.get_f64 b 0)) ())
  in
  Alcotest.(check int) "read after closing fence" 0 (List.length res.R.races)

let local_read_during_epoch_races () =
  let res =
    run (put_program ~target_epoch1:(fun _ b -> ignore (A.get_f64 b 0)) ())
  in
  Alcotest.(check bool) "target read vs incoming put" true (R.has_races res)

let local_write_during_epoch_races () =
  let res =
    run (put_program ~target_epoch1:(fun _ b -> A.set_f64 b 0 9.) ())
  in
  Alcotest.(check bool) "target write vs incoming put" true (R.has_races res)

let origin_reuse_before_fence_races () =
  let res =
    run (put_program ~origin_epoch1:(fun _ src -> A.set_f64 src 0 7.) ())
  in
  Alcotest.(check bool) "origin buffer reuse before fence" true
    (R.has_races res)

let origin_reuse_after_fence_clean () =
  let app (env : R.env) =
    let ctx = env.R.mpi in
    let wbuf = alloc env 8 in
    let win = Mpi.win_create ctx ~buf:wbuf ~bytes:64 in
    Mpi.win_fence ctx win;
    if ctx.Mpi.rank = 0 then begin
      let src = alloc ~tag:"src" env 8 in
      Mpi.put ctx win ~buf:src ~count:8 ~dt:Dt.double ~target:1 ~disp:0;
      Mpi.win_fence ctx win;
      A.set_f64 src 0 7.
    end
    else Mpi.win_fence ctx win;
    Mpi.win_free ctx win
  in
  let res = run app in
  Alcotest.(check int) "reuse after fence" 0 (List.length res.R.races)

let overlapping_puts_race () =
  let app (env : R.env) =
    let ctx = env.R.mpi in
    let wbuf = alloc env 8 in
    let win = Mpi.win_create ctx ~buf:wbuf ~bytes:64 in
    Mpi.win_fence ctx win;
    if ctx.Mpi.rank = 0 then begin
      let src = alloc ~tag:"src" env 8 in
      Mpi.put ctx win ~buf:src ~count:4 ~dt:Dt.double ~target:1 ~disp:0;
      Mpi.put ctx win ~buf:src ~count:4 ~dt:Dt.double ~target:1 ~disp:2
    end;
    Mpi.win_fence ctx win;
    Mpi.win_free ctx win
  in
  let res = run app in
  Alcotest.(check bool) "overlapping puts in one epoch" true (R.has_races res)

let disjoint_puts_clean () =
  let app (env : R.env) =
    let ctx = env.R.mpi in
    let wbuf = alloc env 8 in
    let win = Mpi.win_create ctx ~buf:wbuf ~bytes:64 in
    Mpi.win_fence ctx win;
    if ctx.Mpi.rank = 0 then begin
      let src = alloc ~tag:"src" env 8 in
      Mpi.put ctx win ~buf:src ~count:4 ~dt:Dt.double ~target:1 ~disp:0;
      Mpi.put ctx win ~buf:src ~count:4 ~dt:Dt.double ~target:1 ~disp:4
    end;
    Mpi.win_fence ctx win;
    Mpi.win_free ctx win
  in
  let res = run app in
  Alcotest.(check int) "disjoint puts" 0 (List.length res.R.races)

let put_vs_get_race () =
  (* Rank 0 puts while rank 2 gets the same region in one epoch. *)
  let app (env : R.env) =
    let ctx = env.R.mpi in
    let wbuf = alloc env 8 in
    let win = Mpi.win_create ctx ~buf:wbuf ~bytes:64 in
    Mpi.win_fence ctx win;
    if ctx.Mpi.rank = 0 then begin
      let src = alloc ~tag:"src" env 8 in
      Mpi.put ctx win ~buf:src ~count:8 ~dt:Dt.double ~target:1 ~disp:0
    end
    else if ctx.Mpi.rank = 2 then begin
      let dst = alloc ~tag:"dst" env 8 in
      Mpi.get ctx win ~buf:dst ~count:8 ~dt:Dt.double ~target:1 ~disp:0
    end;
    Mpi.win_fence ctx win;
    Mpi.win_free ctx win
  in
  let res = run ~nranks:3 app in
  Alcotest.(check bool) "put vs get same epoch" true (R.has_races res)

let accumulate_vs_store_races () =
  let app (env : R.env) =
    let ctx = env.R.mpi in
    let wbuf = alloc env 8 in
    let win = Mpi.win_create ctx ~buf:wbuf ~bytes:64 in
    Mpi.win_fence ctx win;
    if ctx.Mpi.rank = 0 then begin
      let c = alloc ~tag:"c" env 1 in
      Mpi.accumulate ctx win ~buf:c ~count:1 ~dt:Dt.double ~op:Mpi.Sum
        ~target:1 ~disp:0
    end
    else A.set_f64 wbuf 0 1.;
    Mpi.win_fence ctx win;
    Mpi.win_free ctx win
  in
  let res = run app in
  Alcotest.(check bool) "accumulate vs local store" true (R.has_races res)

let missing_opening_fence_races () =
  (* RMA before the first fence: the epoch was never opened, so the
     access is unordered even with the target's initialization. *)
  let app (env : R.env) =
    let ctx = env.R.mpi in
    let wbuf = alloc env 8 in
    if ctx.Mpi.rank = 1 then A.set_f64 wbuf 0 1.;
    let win = Mpi.win_create ctx ~buf:wbuf ~bytes:64 in
    if ctx.Mpi.rank = 0 then begin
      let src = alloc ~tag:"src" env 8 in
      Mpi.put ctx win ~buf:src ~count:8 ~dt:Dt.double ~target:1 ~disp:0
    end;
    Mpi.win_fence ctx win;
    Mpi.win_free ctx win
  in
  let res = run app in
  Alcotest.(check bool) "put before opening fence" true (R.has_races res)

(* --- CUDA-aware RMA ----------------------------------------------------------- *)

let device_window_roundtrip () =
  (* Windows over device memory: one-sided CUDA-aware communication. *)
  let seen = ref 0. in
  let app (env : R.env) =
    let ctx = env.R.mpi in
    let dev = env.R.dev in
    let wbuf = Cudasim.Memory.cuda_malloc ~tag:"d_win" dev ~ty:f64 ~count:8 in
    let win = Mpi.win_create ctx ~buf:wbuf ~bytes:64 in
    Mpi.win_fence ctx win;
    if ctx.Mpi.rank = 0 then begin
      let src = Cudasim.Memory.cuda_malloc ~tag:"d_src" dev ~ty:f64 ~count:8 in
      Cudasim.Memory.memset dev ~dst:src ~bytes:64 ~value:0 ();
      Cudasim.Device.device_synchronize dev;
      A.raw_set_f64 src 1 3.25;
      Mpi.put ctx win ~buf:src ~count:8 ~dt:Dt.double ~target:1 ~disp:0
    end;
    Mpi.win_fence ctx win;
    if ctx.Mpi.rank = 1 then seen := A.raw_get_f64 wbuf 1;
    Mpi.win_free ctx win
  in
  let res = run ~flavor:F.Must_cusan app in
  Alcotest.(check (float 0.)) "device window data" 3.25 !seen;
  Alcotest.(check int) "clean" 0 (List.length res.R.races)

let kernel_then_put_without_sync_races () =
  (* The hybrid crossover: a kernel writes the origin buffer on a
     stream, and MPI_Put reads it without cudaDeviceSynchronize —
     CuSan's stream fiber vs MUST's RMA origin fiber. *)
  let app (env : R.env) =
    let ctx = env.R.mpi in
    let dev = env.R.dev in
    let wbuf = Cudasim.Memory.cuda_malloc ~tag:"d_win" dev ~ty:f64 ~count:8 in
    let win = Mpi.win_create ctx ~buf:wbuf ~bytes:64 in
    Mpi.win_fence ctx win;
    if ctx.Mpi.rank = 0 then begin
      let k =
        env.R.compile
          (Cudasim.Kernel.make
             ~kir:
               Kir.Dsl.(
                 ( modul ~kernels:[ "w" ]
                     [ func "w" [ ptr "a" ] [ store (p 0) tid (i2f tid) ] ],
                   "w" ))
             "w")
      in
      let src = Cudasim.Memory.cuda_malloc ~tag:"d_src" dev ~ty:f64 ~count:8 in
      Cudasim.Device.launch dev k ~grid:8 ~args:[| VPtr src |] ();
      (* missing cudaDeviceSynchronize *)
      Mpi.put ctx win ~buf:src ~count:8 ~dt:Dt.double ~target:1 ~disp:0
    end;
    Mpi.win_fence ctx win;
    Mpi.win_free ctx win
  in
  let res = run ~flavor:F.Must_cusan app in
  Alcotest.(check bool) "kernel-to-Put race" true (R.has_races res)

let tests =
  [
    Alcotest.test_case "put moves data" `Quick put_moves_data;
    Alcotest.test_case "get moves data" `Quick get_moves_data;
    Alcotest.test_case "accumulate sums" `Quick accumulate_sums;
    Alcotest.test_case "put out of bounds" `Quick put_out_of_bounds;
    Alcotest.test_case "freed window rejected" `Quick freed_window_rejected;
    Alcotest.test_case "read after fence clean" `Quick read_after_fence_clean;
    Alcotest.test_case "local read during epoch races" `Quick
      local_read_during_epoch_races;
    Alcotest.test_case "local write during epoch races" `Quick
      local_write_during_epoch_races;
    Alcotest.test_case "origin reuse before fence races" `Quick
      origin_reuse_before_fence_races;
    Alcotest.test_case "origin reuse after fence clean" `Quick
      origin_reuse_after_fence_clean;
    Alcotest.test_case "overlapping puts race" `Quick overlapping_puts_race;
    Alcotest.test_case "disjoint puts clean" `Quick disjoint_puts_clean;
    Alcotest.test_case "put vs get race" `Quick put_vs_get_race;
    Alcotest.test_case "accumulate vs store races" `Quick
      accumulate_vs_store_races;
    Alcotest.test_case "missing opening fence races" `Quick
      missing_opening_fence_races;
    Alcotest.test_case "device window roundtrip" `Quick device_window_roundtrip;
    Alcotest.test_case "kernel then put without sync races" `Quick
      kernel_then_put_without_sync_races;
  ]

let () = Alcotest.run "rma" [ ("rma", tests) ]
