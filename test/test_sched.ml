(* Unit tests for the deterministic cooperative scheduler. *)

let trace () =
  let log = ref [] in
  let emit s = log := s :: !log in
  (log, emit)

let order () =
  let log, emit = trace () in
  Sched.Scheduler.run
    [
      ("a", fun () -> emit "a1"; Sched.Scheduler.yield (); emit "a2");
      ("b", fun () -> emit "b1"; Sched.Scheduler.yield (); emit "b2");
    ];
  Alcotest.(check (list string)) "round robin" [ "a1"; "b1"; "a2"; "b2" ]
    (List.rev !log)

let determinism () =
  let run () =
    let log, emit = trace () in
    Sched.Scheduler.run
      (List.init 5 (fun i ->
           ( Printf.sprintf "t%d" i,
             fun () ->
               for k = 0 to 3 do
                 emit (Printf.sprintf "t%d.%d" i k);
                 Sched.Scheduler.yield ()
               done )));
    List.rev !log
  in
  Alcotest.(check (list string)) "two runs identical" (run ()) (run ())

let wait_signal () =
  let log, emit = trace () in
  let c = Sched.Scheduler.cond "c" in
  let ready = ref false in
  Sched.Scheduler.run
    [
      ( "consumer",
        fun () ->
          Sched.Scheduler.wait_until c (fun () -> !ready);
          emit "consumed" );
      ( "producer",
        fun () ->
          Sched.Scheduler.yield ();
          ready := true;
          emit "produced";
          Sched.Scheduler.signal c );
    ];
  Alcotest.(check (list string)) "order" [ "produced"; "consumed" ] (List.rev !log)

let broadcast () =
  let c = Sched.Scheduler.cond "c" in
  let woken = ref 0 in
  let go = ref false in
  Sched.Scheduler.run
    [
      ("w1", fun () -> Sched.Scheduler.wait_until c (fun () -> !go); incr woken);
      ("w2", fun () -> Sched.Scheduler.wait_until c (fun () -> !go); incr woken);
      ("sig", fun () -> go := true; Sched.Scheduler.signal c);
    ];
  Alcotest.(check int) "both woken" 2 !woken

let deadlock () =
  let c = Sched.Scheduler.cond "never" in
  match Sched.Scheduler.run [ ("stuck", fun () -> Sched.Scheduler.wait c) ] with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Sched.Scheduler.Deadlock [ ("stuck", "never") ] -> ()
  | exception Sched.Scheduler.Deadlock other ->
      Alcotest.failf "wrong deadlock set: %d entries" (List.length other)

let deadlock_partial () =
  (* One task finishes fine; the other deadlocks. *)
  let c = Sched.Scheduler.cond "never" in
  match
    Sched.Scheduler.run
      [ ("ok", fun () -> Sched.Scheduler.yield ()); ("stuck", fun () -> Sched.Scheduler.wait c) ]
  with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Sched.Scheduler.Deadlock [ ("stuck", "never") ] -> ()

let spawn_dynamic () =
  let log, emit = trace () in
  Sched.Scheduler.run
    [
      ( "parent",
        fun () ->
          emit "parent";
          Sched.Scheduler.spawn "child" (fun () -> emit "child");
          Sched.Scheduler.yield ();
          emit "parent2" );
    ];
  Alcotest.(check (list string)) "spawned runs" [ "parent"; "child"; "parent2" ]
    (List.rev !log)

let self_names () =
  let names = ref [] in
  Sched.Scheduler.run
    [
      ("x", fun () -> names := Sched.Scheduler.self () :: !names);
      ("y", fun () -> names := Sched.Scheduler.self () :: !names);
    ];
  Alcotest.(check (list string)) "self" [ "x"; "y" ] (List.rev !names)

let self_ids () =
  let ids = ref [] in
  Sched.Scheduler.run
    (List.init 3 (fun i ->
         (Printf.sprintf "r%d" i, fun () -> ids := Sched.Scheduler.self_id () :: !ids)));
  Alcotest.(check (list int)) "ids in spawn order" [ 0; 1; 2 ] (List.rev !ids)

let exn_propagates () =
  match
    Sched.Scheduler.run [ ("boom", fun () -> failwith "boom") ]
  with
  | () -> Alcotest.fail "expected exception"
  | exception Failure msg -> Alcotest.(check string) "message" "boom" msg

let not_nested () =
  Sched.Scheduler.run
    [
      ( "outer",
        fun () ->
          match Sched.Scheduler.run [ ("inner", fun () -> ()) ] with
          | () -> Alcotest.fail "nested run must fail"
          | exception Invalid_argument _ -> () );
    ]

let outside_scheduler () =
  match Sched.Scheduler.self () with
  | _ -> Alcotest.fail "expected Not_in_scheduler"
  | exception Sched.Scheduler.Not_in_scheduler -> ()

let many_tasks () =
  (* Stress: 200 tasks, 50 yields each, all finish. *)
  let n = ref 0 in
  Sched.Scheduler.run
    (List.init 200 (fun i ->
         ( Printf.sprintf "m%d" i,
           fun () ->
             for _ = 1 to 50 do
               Sched.Scheduler.yield ()
             done;
             incr n )));
  Alcotest.(check int) "all finished" 200 !n

let signal_before_wait_is_lost () =
  (* Signals are not sticky: waiting after the only signal deadlocks,
     which is why wait_until re-checks a predicate. *)
  let c = Sched.Scheduler.cond "c" in
  match
    Sched.Scheduler.run
      [
        ("sig", fun () -> Sched.Scheduler.signal c);
        ("wait", fun () -> Sched.Scheduler.yield (); Sched.Scheduler.wait c);
      ]
  with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Sched.Scheduler.Deadlock _ -> ()

(* Property: any program of yielding/spawning tasks terminates with
   every task run to completion, and two executions produce identical
   traces (the determinism the MPI simulator and testsuite rely on). *)
let prop_deterministic_termination =
  QCheck.Test.make ~name:"random task programs deterministic" ~count:100
    QCheck.(list_of_size Gen.(1 -- 8) (pair (int_range 0 5) (int_range 0 3)))
    (fun spec ->
      let run () =
        let log = ref [] in
        Sched.Scheduler.run
          (List.mapi
             (fun i (yields, children) ->
               ( Printf.sprintf "t%d" i,
                 fun () ->
                   for k = 1 to yields do
                     log := Printf.sprintf "t%d.%d" i k :: !log;
                     Sched.Scheduler.yield ()
                   done;
                   for c = 1 to children do
                     Sched.Scheduler.spawn
                       (Printf.sprintf "t%d.c%d" i c)
                       (fun () ->
                         log := Printf.sprintf "t%d.c%d" i c :: !log)
                   done ))
             spec);
        List.rev !log
      in
      let a = run () and b = run () in
      a = b
      &&
      (* every spawned child ran *)
      List.for_all2
        (fun i (_, children) ->
          List.for_all
            (fun c -> List.mem (Printf.sprintf "t%d.c%d" i c) a)
            (List.init children (fun c -> c + 1)))
        (List.init (List.length spec) Fun.id)
        spec)

(* --- kill / waiter-record hygiene ------------------------------------ *)

let kill_purges_waiters () =
  let c = Sched.Scheduler.cond "c" in
  let before = ref 0 and after = ref (-1) in
  Sched.Scheduler.run
    [
      ("victim", fun () -> Sched.Scheduler.wait c);
      ( "reaper",
        fun () ->
          before := Sched.Scheduler.waiter_count c;
          Sched.Scheduler.kill (fun n -> n = "victim");
          after := Sched.Scheduler.waiter_count c );
    ];
  Alcotest.(check int) "victim was parked" 1 !before;
  Alcotest.(check int) "record purged at kill time" 0 !after

let kill_soak_no_waiter_leak () =
  (* The original leak: killing a blocked task dropped it from
     scheduling but left its waiter record — and with it the whole
     suspended stack — parked on the condition forever. A long-lived
     condition outliving a thousand reaped waiters must end empty. *)
  let c = Sched.Scheduler.cond "pool" in
  Sched.Scheduler.run
    [
      ( "driver",
        fun () ->
          for i = 1 to 1000 do
            let name = Printf.sprintf "w%d" i in
            Sched.Scheduler.spawn name (fun () -> Sched.Scheduler.wait c);
            Sched.Scheduler.yield ();
            (* the worker is blocked on [c] now *)
            Sched.Scheduler.kill (fun n -> n = name)
          done );
    ];
  Alcotest.(check int) "no abandoned waiter records" 0
    (Sched.Scheduler.waiter_count c)

let kill_runnable_then_signal () =
  (* Killing a *runnable* waiterless task and then signalling the
     condition later must not resurrect anything. *)
  let c = Sched.Scheduler.cond "c" in
  let ran = ref false in
  Sched.Scheduler.run
    [
      ("victim", fun () -> Sched.Scheduler.yield (); ran := true);
      ( "reaper",
        fun () ->
          Sched.Scheduler.kill (fun n -> n = "victim");
          Sched.Scheduler.signal c );
    ];
  Alcotest.(check bool) "killed runnable task never resumed" false !ran;
  Alcotest.(check int) "condition untouched" 0 (Sched.Scheduler.waiter_count c)

(* --- duplicate task names --------------------------------------------- *)

let duplicate_names_disambiguated () =
  let names = ref [] in
  let note () = names := Sched.Scheduler.self () :: !names in
  Sched.Scheduler.run
    [ ("dup", note); ("dup", note); ("other", note); ("dup", note) ];
  Alcotest.(check (list string)) "suffixed in spawn order"
    [ "dup"; "dup#2"; "other"; "dup#3" ]
    (List.rev !names)

let duplicate_name_kill_precise () =
  (* With disambiguated names, kill-by-exact-name reaps exactly the
     task it names — before the fix both "worker" tasks shared a name
     and could not be told apart. *)
  let log, emit = trace () in
  Sched.Scheduler.run
    [
      ("worker", fun () -> Sched.Scheduler.yield (); emit "first survived");
      ("worker", fun () -> Sched.Scheduler.yield (); emit "second survived");
      ("reaper", fun () -> Sched.Scheduler.kill (fun n -> n = "worker#2"));
    ];
  Alcotest.(check (list string)) "only worker#2 reaped" [ "first survived" ]
    (List.rev !log)

let duplicate_name_of_finished_task () =
  (* Even a finished task keeps its name reserved: respawning "t" after
     "t" completed yields "t#2", so traces never conflate the two. *)
  let names = ref [] in
  Sched.Scheduler.run
    [
      ("t", fun () -> names := Sched.Scheduler.self () :: !names);
      ( "spawner",
        fun () ->
          Sched.Scheduler.spawn "t" (fun () ->
              names := Sched.Scheduler.self () :: !names) );
    ];
  Alcotest.(check (list string)) "finished name stays reserved"
    [ "t"; "t#2" ] (List.rev !names)

(* --- pickers ----------------------------------------------------------- *)

let picker_sees_fifo_candidates () =
  let seen = ref [] in
  let picker ~step:_ (cands : Sched.Scheduler.candidate array) =
    seen :=
      Array.to_list (Array.map (fun c -> c.Sched.Scheduler.c_name) cands)
      :: !seen;
    0
  in
  Sched.Scheduler.run ~picker
    [ ("a", fun () -> ()); ("b", fun () -> ()); ("c", fun () -> ()) ];
  Alcotest.(check (list (list string))) "candidates offered in FIFO order"
    [ [ "a"; "b"; "c" ]; [ "b"; "c" ]; [ "c" ] ]
    (List.rev !seen)

let picker_reverses_order () =
  let log, emit = trace () in
  let picker ~step:_ cands = Array.length cands - 1 in
  Sched.Scheduler.run ~picker
    [
      ("a", fun () -> emit "a");
      ("b", fun () -> emit "b");
      ("c", fun () -> emit "c");
    ];
  Alcotest.(check (list string)) "LIFO under a reversing picker"
    [ "c"; "b"; "a" ] (List.rev !log)

let picker_fifo_matches_default () =
  (* A picker that always takes index 0 is the FIFO policy: its trace
     must be byte-identical to the default (no-picker) dispatcher's. *)
  let exec picker =
    let log, emit = trace () in
    Sched.Scheduler.run ?picker
      (List.init 4 (fun i ->
           ( Printf.sprintf "p%d" i,
             fun () ->
               for k = 0 to 2 do
                 emit (Printf.sprintf "p%d.%d" i k);
                 Sched.Scheduler.yield ()
               done )));
    List.rev !log
  in
  Alcotest.(check (list string)) "index-0 picker = default FIFO"
    (exec None)
    (exec (Some (fun ~step:_ _ -> 0)))

let picker_out_of_range_rejected () =
  match
    Sched.Scheduler.run
      ~picker:(fun ~step:_ cands -> Array.length cands)
      [ ("a", fun () -> ()) ]
  with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* Property: under any picker, every task still runs to completion and
   the same picker yields the same execution twice — schedule control
   never loses tasks or erodes determinism. *)
let prop_any_picker_runs_all =
  QCheck.Test.make ~name:"any picker runs every task to completion" ~count:100
    QCheck.(
      pair (int_range 1 8) (list_of_size Gen.(1 -- 20) (int_range 0 1000)))
    (fun (ntasks, choices) ->
      let arr = Array.of_list choices in
      let run () =
        let finished = ref 0 in
        let calls = ref 0 in
        let picker ~step:_ cands =
          let k = arr.(!calls mod Array.length arr) in
          incr calls;
          k mod Array.length cands
        in
        Sched.Scheduler.run ~picker
          (List.init ntasks (fun t ->
               ( Printf.sprintf "q%d" t,
                 fun () ->
                   Sched.Scheduler.yield ();
                   incr finished )));
        !finished
      in
      run () = ntasks && run () = ntasks)

let tests =
  [
    Alcotest.test_case "round-robin order" `Quick order;
    Alcotest.test_case "determinism" `Quick determinism;
    Alcotest.test_case "wait/signal" `Quick wait_signal;
    Alcotest.test_case "signal broadcasts" `Quick broadcast;
    Alcotest.test_case "deadlock detected" `Quick deadlock;
    Alcotest.test_case "partial deadlock" `Quick deadlock_partial;
    Alcotest.test_case "dynamic spawn" `Quick spawn_dynamic;
    Alcotest.test_case "self names" `Quick self_names;
    Alcotest.test_case "self ids" `Quick self_ids;
    Alcotest.test_case "exception propagates" `Quick exn_propagates;
    Alcotest.test_case "nested run rejected" `Quick not_nested;
    Alcotest.test_case "ops outside run rejected" `Quick outside_scheduler;
    Alcotest.test_case "200 tasks stress" `Quick many_tasks;
    Alcotest.test_case "signals are not sticky" `Quick signal_before_wait_is_lost;
    Alcotest.test_case "kill purges waiter records" `Quick kill_purges_waiters;
    Alcotest.test_case "kill soak leaves no waiters" `Quick
      kill_soak_no_waiter_leak;
    Alcotest.test_case "kill of runnable task" `Quick kill_runnable_then_signal;
    Alcotest.test_case "duplicate names disambiguated" `Quick
      duplicate_names_disambiguated;
    Alcotest.test_case "kill by disambiguated name" `Quick
      duplicate_name_kill_precise;
    Alcotest.test_case "finished names stay reserved" `Quick
      duplicate_name_of_finished_task;
    Alcotest.test_case "picker sees FIFO candidates" `Quick
      picker_sees_fifo_candidates;
    Alcotest.test_case "picker steers order" `Quick picker_reverses_order;
    Alcotest.test_case "index-0 picker equals default" `Quick
      picker_fifo_matches_default;
    Alcotest.test_case "out-of-range pick rejected" `Quick
      picker_out_of_range_rejected;
    QCheck_alcotest.to_alcotest prop_deterministic_termination;
    QCheck_alcotest.to_alcotest prop_any_picker_runs_all;
  ]

let () = Alcotest.run "sched" [ ("scheduler", tests) ]
