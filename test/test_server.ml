(* Tests for the cusand analysis daemon stack: the wire protocol
   (roundtrips, hostile and torn frames), the job engine's determinism
   (the property that makes the result cache and the daemon-vs-batch
   byte-identity contract sound), the deterministic retry backoff, and
   the daemon itself end-to-end over a real Unix-domain socket —
   including the chaos acceptance: with a third of the jobs crashing or
   wedging, every surviving job is served byte-identically to a local
   batch run, every killed job gets a post-mortem, the queue stays
   bounded, and the drain completes cleanly. *)

module Mjson = Reporting.Mjson
module P = Server.Protocol
module D = Server.Daemon
module E = Server.Engine

let mstr = Mjson.to_string

let member_str k j =
  Mjson.member k j |> Fun.flip Option.bind Mjson.to_str

let member_int k j =
  Mjson.member k j |> Fun.flip Option.bind Mjson.to_int

let member_bool k j =
  Mjson.member k j |> Fun.flip Option.bind Mjson.to_bool

(* --- protocol: requests roundtrip the wire ------------------------------ *)

let string_gen =
  (* Full byte range minus '\255' markers QCheck dislikes printing:
     hostile on purpose — quotes, braces, newlines, NULs, high bytes. *)
  QCheck.Gen.(string_size ~gen:(map Char.chr (0 -- 255)) (0 -- 40))

let job_gen : P.job QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [
      map (fun target -> P.Lint { target }) string_gen;
      map3
        (fun case seed faults -> P.Soak { case; seed; faults })
        string_gen small_signed_int
        (option string_gen);
      map2 (fun app flavor -> P.Bench { app; flavor }) string_gen string_gen;
      return P.Boom;
      map (fun steps -> P.Spin { steps = steps + 1 }) small_nat;
    ]

let request_gen : P.request QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [
      map (fun j -> P.Submit j) job_gen;
      return P.Health;
      return P.Stats;
      return P.Shutdown;
      map (fun n -> P.Resize (n + 1)) small_nat;
      map (fun digest -> P.Subscribe { digest }) string_gen;
    ]

let request_print r = mstr (P.request_to_json r)

let prop_request_roundtrip =
  QCheck.Test.make ~count:500 ~name:"request -> json -> string -> request"
    (QCheck.make ~print:request_print request_gen)
    (fun r -> P.parse_request (mstr (P.request_to_json r)) = Ok r)

(* Hostile bytes must decode to Ok or Error — never an exception for
   the accept loop to trip over. *)
let prop_parse_never_raises =
  QCheck.Test.make ~count:500 ~name:"parse_request total on hostile input"
    (QCheck.make ~print:(Printf.sprintf "%S") string_gen)
    (fun s ->
      match P.parse_request s with Ok _ | Error _ -> true)

(* A parse failure must name the problem: bad JSON, bad schema, bad op,
   missing field. *)
let parse_request_errors () =
  let err s =
    match P.parse_request s with
    | Error m -> m
    | Ok _ -> Alcotest.failf "accepted %S" s
  in
  let contains ~sub s =
    let n = String.length s and m = String.length sub in
    let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "bad json named" true
    (contains ~sub:"bad JSON" (err "{not json"));
  Alcotest.(check bool) "unknown schema named" true
    (contains ~sub:"schema" (err {|{"schema":"bogus/9","op":"health"}|}));
  Alcotest.(check bool) "unknown op named" true
    (contains ~sub:"unknown op" (err {|{"op":"frobnicate"}|}));
  Alcotest.(check bool) "missing field named" true
    (contains ~sub:"target" (err {|{"op":"lint"}|}));
  Alcotest.(check bool) "missing op named" true
    (contains ~sub:"op" (err {|{"schema":"cusand/1"}|}))

(* --- protocol: framing over a real socketpair --------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

let frame_roundtrip () =
  with_socketpair (fun a b ->
      let doc = P.error_reply "x\"y\nz" in
      P.write_frame a doc;
      match P.read_frame b with
      | Ok line -> (
          match Mjson.of_string line with
          | Ok j -> Alcotest.(check string) "frame roundtrips" (mstr doc) (mstr j)
          | Error m -> Alcotest.failf "reply does not parse: %s" m)
      | Error e -> Alcotest.failf "read failed: %s" (P.read_error_to_string e))

let frame_closed () =
  with_socketpair (fun a b ->
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      match P.read_frame b with
      | Error P.Closed -> ()
      | Error e -> Alcotest.failf "expected Closed, got %s" (P.read_error_to_string e)
      | Ok s -> Alcotest.failf "expected Closed, got frame %S" s)

let frame_truncated () =
  with_socketpair (fun a b ->
      write_all a "{\"op\":\"health\"";
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      match P.read_frame b with
      | Error (P.Truncated partial) ->
          Alcotest.(check string) "partial bytes kept" "{\"op\":\"health\"" partial
      | Error e ->
          Alcotest.failf "expected Truncated, got %s" (P.read_error_to_string e)
      | Ok s -> Alcotest.failf "expected Truncated, got frame %S" s)

let frame_oversized () =
  with_socketpair (fun a b ->
      (* Feed > max_frame bytes with no newline from a writer thread
         (the reader must give up; a single-threaded write could fill
         both socket buffers and deadlock the test). *)
      let writer =
        Thread.create
          (fun () ->
            try write_all a (String.make ((P.max_frame + 8192) land max_int) 'a')
            with Unix.Unix_error _ -> ())
          ()
      in
      let r = P.read_frame b in
      (try Unix.close b with Unix.Unix_error _ -> ());
      Thread.join writer;
      match r with
      | Error (P.Oversized _) -> ()
      | Error e ->
          Alcotest.failf "expected Oversized, got %s" (P.read_error_to_string e)
      | Ok s -> Alcotest.failf "expected Oversized, got %d-byte frame" (String.length s))

(* --- engine: determinism (cache + byte-identity soundness) -------------- *)

let run_ok job =
  match E.run_job job with
  | Ok j -> j
  | Error m -> Alcotest.failf "job failed: %s" m

let engine_deterministic () =
  List.iter
    (fun job ->
      let a = mstr (run_ok job) in
      let b = mstr (run_ok job) in
      Alcotest.(check string) (P.job_describe job) a b)
    [
      P.Lint { target = "jacobi/jacobi" };
      P.Soak { case = "legacy/default_barrier_blocking"; seed = 0; faults = None };
      P.Soak
        {
          case = "cuda-to-mpi/send_device_nosync_nok";
          seed = 11;
          faults = Some "kernel_launch%0.3:fail";
        };
      P.Spin { steps = 20_000 };
    ]

let engine_rejects_unknown () =
  let check_err job sub =
    match E.run_job job with
    | Ok _ -> Alcotest.failf "%s unexpectedly succeeded" (P.job_describe job)
    | Error m ->
        let contains =
          let n = String.length m and k = String.length sub in
          let rec at i = i + k <= n && (String.sub m i k = sub || at (i + 1)) in
          at 0
        in
        Alcotest.(check bool) (Fmt.str "%s names %s" m sub) true contains
  in
  check_err (P.Lint { target = "no/such" }) "known:";
  check_err (P.Soak { case = "no/such"; seed = 0; faults = None }) "known:";
  check_err
    (P.Soak
       { case = "legacy/default_barrier_blocking"; seed = 0; faults = Some "%%%" })
    "fault spec";
  check_err (P.Bench { app = "no-such"; flavor = "cusan" }) "known:";
  check_err (P.Bench { app = "jacobi"; flavor = "warp9" }) "flavor"

let engine_boom_raises () =
  match E.run_job P.Boom with
  | exception E.Chaos_drill -> ()
  | _ -> Alcotest.fail "boom did not raise Chaos_drill"

let engine_spin_stalls () =
  let j = run_ok (P.Spin { steps = 20_000 }) in
  Alcotest.(check (option string)) "outcome" (Some "stalled") (member_str "outcome" j);
  let stall = Option.get (Mjson.member "stall" j) in
  Alcotest.(check (option int)) "budget hit" (Some 20_000) (member_int "steps" stall)

(* --- resilience: deterministic seeded backoff --------------------------- *)

let backoff_deterministic () =
  Alcotest.(check (list int)) "same seed, same schedule"
    (Resilience.backoff_schedule ~seed:42 ~attempts:8)
    (Resilience.backoff_schedule ~seed:42 ~attempts:8);
  Alcotest.(check bool) "different seeds decorrelate" true
    (Resilience.backoff_schedule ~seed:1 ~attempts:8
    <> Resilience.backoff_schedule ~seed:2 ~attempts:8)

(* The pinned sequence: uncapped exponential base doubling into the
   1024 cap, plus the seed-42 Prng jitter. A change to the Prng stream,
   the cap, or the jitter window shows up here as a literal diff. *)
let backoff_pinned () =
  Alcotest.(check (list int)) "unjittered base doubles then caps"
    [ 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 1024; 1024 ]
    (List.init 12 (fun i -> Resilience.backoff_yields ~attempt:(i + 1) ()));
  Alcotest.(check (list int)) "seed 42 jittered schedule"
    [ 3; 7; 10; 20; 50; 70 ]
    (Resilience.backoff_schedule ~seed:42 ~attempts:6);
  (* Seed 1 is cusanctl's default --seed: this is the exact backoff
     schedule every out-of-the-box client retry loop spends. *)
  Alcotest.(check (list int)) "seed 1 (cusanctl default) schedule"
    [ 3; 7; 14; 27; 57; 64 ]
    (Resilience.backoff_schedule ~seed:1 ~attempts:6)

let with_retries_spends_schedule () =
  (* The retry loop must spend exactly the schedule the seed predicts,
     via whatever medium on_backoff maps yields onto. *)
  let seed = 42 in
  let spent = ref [] in
  let attempts_seen = ref [] in
  let v =
    Resilience.with_retries ~label:"t" ~max_attempts:4
      ~jitter:(Faultsim.Prng.create seed)
      ~on_backoff:(fun ~yields -> spent := !spent @ [ yields ])
      ~retryable:(function Failure _ -> true | _ -> false)
      (fun ~attempt ->
        attempts_seen := !attempts_seen @ [ attempt ];
        if attempt < 3 then failwith "transient" else 99)
  in
  Alcotest.(check int) "value" 99 v;
  Alcotest.(check (list int)) "attempts" [ 1; 2; 3 ] !attempts_seen;
  Alcotest.(check (list int)) "backoff spent = predicted schedule"
    (Resilience.backoff_schedule ~seed ~attempts:2)
    !spent

let with_retries_exhausts () =
  match
    Resilience.with_retries ~label:"t" ~max_attempts:3
      ~on_backoff:(fun ~yields:_ -> ())
      ~retryable:(function Failure _ -> true | _ -> false)
      (fun ~attempt:_ -> failwith "always")
  with
  | _ -> Alcotest.fail "expected Retries_exhausted"
  | exception Resilience.Retries_exhausted { attempts = 3; last = Failure _; _ }
    ->
      ()
  | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e)

(* The busy reply's backoff hint is load-proportional, never constant:
   pin the formula max 1 (in_flight - high_water + queue_len). *)
let retry_after_hint_pinned () =
  let h = P.retry_after_hint in
  Alcotest.(check int) "at the mark" 1
    (h ~in_flight:1 ~high_water:1 ~queue_len:0);
  Alcotest.(check int) "under the mark floors at 1" 1
    (h ~in_flight:4 ~high_water:8 ~queue_len:0);
  Alcotest.(check int) "overshoot plus queue" 7
    (h ~in_flight:8 ~high_water:4 ~queue_len:3);
  Alcotest.(check int) "queue alone drives it" 5
    (h ~in_flight:4 ~high_water:4 ~queue_len:5);
  (* strictly monotone in queued work once past the mark *)
  List.iter
    (fun q ->
      Alcotest.(check int) "monotone in queue_len"
        (h ~in_flight:6 ~high_water:4 ~queue_len:q + 1)
        (h ~in_flight:6 ~high_water:4 ~queue_len:(q + 1)))
    [ 0; 1; 2; 5; 9 ]

(* --- resilience: circuit breaker ---------------------------------------- *)

(* Unjittered, the cooldown ladder is the backoff_yields base: 2, 4, 8…
   doubling per consecutive open, reset on a closing success. Every
   transition below is pinned. *)
let breaker_pinned_transitions () =
  let module B = Resilience.Breaker in
  let b = B.create ~threshold:2 () in
  let waits = ref [] in
  let ow ~yields = waits := !waits @ [ yields ] in
  let st name expect =
    Alcotest.(check bool) name true (B.state b = expect)
  in
  st "starts closed" B.Closed;
  B.record_failure b;
  st "one failure below threshold stays closed" B.Closed;
  B.acquire ~on_wait:ow b;
  Alcotest.(check (list int)) "closed acquire never waits" [] !waits;
  B.record_failure b;
  st "threshold opens" B.Open;
  B.acquire ~on_wait:ow b;
  st "acquire transitions to half-open" B.Half_open;
  Alcotest.(check (list int)) "first cooldown" [ 2 ] !waits;
  B.record_failure b;
  st "failed probe re-opens" B.Open;
  B.acquire ~on_wait:ow b;
  Alcotest.(check (list int)) "second cooldown doubles" [ 2; 4 ] !waits;
  B.record_failure b;
  B.acquire ~on_wait:ow b;
  Alcotest.(check (list int)) "third doubles again" [ 2; 4; 8 ] !waits;
  B.record_success b;
  st "successful probe closes" B.Closed;
  (* the ladder reset with the close: a fresh trip starts at 2 again *)
  B.record_failure b;
  B.record_failure b;
  B.acquire ~on_wait:ow b;
  Alcotest.(check (list int)) "ladder reset after success" [ 2; 4; 8; 2 ] !waits

let breaker_call_classifies () =
  let module B = Resilience.Breaker in
  let b = B.create ~threshold:1 () in
  let ow ~yields:_ = () in
  let failure = function Failure _ -> true | _ -> false in
  (* an exception the classifier rejects propagates without tripping *)
  (match B.call ~on_wait:ow ~failure b (fun () -> raise Not_found) with
  | _ -> Alcotest.fail "expected Not_found"
  | exception Not_found -> ());
  Alcotest.(check bool) "non-failure exn does not trip" true
    (B.state b = B.Closed);
  (match B.call ~on_wait:ow ~failure b (fun () -> failwith "conn") with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ());
  Alcotest.(check bool) "classified failure trips" true (B.state b = B.Open);
  (* next call waits out the cooldown, probes, and a success closes *)
  Alcotest.(check int) "probe result" 42
    (B.call ~on_wait:ow ~failure b (fun () -> 42));
  Alcotest.(check bool) "success closes" true (B.state b = B.Closed)

(* --- journal: crash-safe durable store ---------------------------------- *)

module J = Server.Journal

let dir_counter = ref 0

let fresh_state_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "cusand-test-state-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  (try Unix.mkdir d 0o755
   with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ());
  d

let rm_rf dir =
  (try
     Array.iter
       (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
       (Sys.readdir dir)
   with Sys_error _ -> ());
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let in_state_dir f =
  let dir = fresh_state_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let entry_frame digest v = J.frame_of_payload (J.entry_payload ~digest v)

let assoc_int digest entries =
  Option.bind (List.assoc_opt digest entries) Mjson.to_int

let journal_empty () =
  in_state_dir (fun dir ->
      let r = J.recover ~dir in
      Alcotest.(check int) "no entries" 0 (List.length r.J.entries);
      Alcotest.(check (option string)) "clean tail" None r.J.torn_tail)

let journal_roundtrip_last_wins () =
  in_state_dir (fun dir ->
      let st, r0 = J.open_store ~dir in
      Alcotest.(check int) "fresh store replays nothing" 0 r0.J.replayed;
      J.append st ~digest:"a" (Mjson.Int 1);
      J.append st ~digest:"b" (Mjson.Int 2);
      J.append st ~digest:"a" (Mjson.Int 3);
      Alcotest.(check int) "appends counted" 3 (J.appended_since_compact st);
      J.close st;
      let r = J.recover ~dir in
      Alcotest.(check (option string)) "clean tail" None r.J.torn_tail;
      Alcotest.(check int) "last write per digest wins" 2
        (List.length r.J.entries);
      Alcotest.(check (option int)) "a rewritten" (Some 3)
        (assoc_int "a" r.J.entries);
      Alcotest.(check (option int)) "b kept" (Some 2)
        (assoc_int "b" r.J.entries))

let journal_torn_tail_truncated () =
  in_state_dir (fun dir ->
      let whole =
        entry_frame "a" (Mjson.Int 1) ^ entry_frame "b" (Mjson.Int 2)
      in
      let torn = entry_frame "c" (Mjson.Int 3) in
      (* a kill -9 mid-append: the final frame stops 3 bytes short *)
      write_file (J.journal_file dir)
        (whole ^ String.sub torn 0 (String.length torn - 3));
      let r = J.recover ~dir in
      Alcotest.(check int) "valid prefix kept" 2 (List.length r.J.entries);
      (match r.J.torn_tail with
      | Some _ -> ()
      | None -> Alcotest.fail "torn tail not diagnosed");
      (* recovery truncated the garbage in place *)
      Alcotest.(check int) "file truncated to the valid prefix"
        (String.length whole)
        (Unix.stat (J.journal_file dir)).Unix.st_size;
      let r2 = J.recover ~dir in
      Alcotest.(check (option string)) "second recovery is clean" None
        r2.J.torn_tail;
      (* and the next append lands after the last committed frame *)
      let st, _ = J.open_store ~dir in
      J.append st ~digest:"d" (Mjson.Int 4);
      J.close st;
      let r3 = J.recover ~dir in
      Alcotest.(check int) "append after truncation recovers" 3
        (List.length r3.J.entries);
      Alcotest.(check (option int)) "new entry present" (Some 4)
        (assoc_int "d" r3.J.entries))

let journal_bitflip_keeps_prefix () =
  in_state_dir (fun dir ->
      let f1 = entry_frame "a" (Mjson.Int 1) in
      let f2 = entry_frame "b" (Mjson.Int 2) in
      let f3 = entry_frame "c" (Mjson.Int 3) in
      let b = Bytes.of_string (f1 ^ f2 ^ f3) in
      (* flip one payload byte in the middle frame *)
      let pos = String.length f1 + 8 + 2 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
      write_file (J.journal_file dir) (Bytes.to_string b);
      let r = J.recover ~dir in
      Alcotest.(check int) "only the prefix before the flip survives" 1
        (List.length r.J.entries);
      Alcotest.(check (option int)) "first entry intact" (Some 1)
        (assoc_int "a" r.J.entries);
      match r.J.torn_tail with
      | Some why ->
          Alcotest.(check bool)
            (Printf.sprintf "diagnosis names the checksum: %s" why)
            true
            (String.length why >= 8 && String.sub why 0 8 = "checksum")
      | None -> Alcotest.fail "corruption not diagnosed")

let journal_snapshot_then_journal () =
  in_state_dir (fun dir ->
      (* snapshot holds a=1, c=5; the journal has newer a=2 plus b=3:
         replay order is snapshot first, journal wins on conflict *)
      write_file (J.snapshot_file dir)
        (entry_frame "a" (Mjson.Int 1) ^ entry_frame "c" (Mjson.Int 5));
      write_file (J.journal_file dir)
        (entry_frame "a" (Mjson.Int 2) ^ entry_frame "b" (Mjson.Int 3));
      (* plus a stale compaction temp file from a crashed compaction *)
      let tmp = J.snapshot_file dir ^ ".tmp" in
      write_file tmp "garbage from a dead compactor";
      let r = J.recover ~dir in
      Alcotest.(check int) "union of snapshot and journal" 3
        (List.length r.J.entries);
      Alcotest.(check (option int)) "journal wins over snapshot" (Some 2)
        (assoc_int "a" r.J.entries);
      Alcotest.(check (option int)) "journal-only entry" (Some 3)
        (assoc_int "b" r.J.entries);
      Alcotest.(check (option int)) "snapshot-only entry" (Some 5)
        (assoc_int "c" r.J.entries);
      Alcotest.(check bool) "stale compaction tmp removed" false
        (Sys.file_exists tmp))

let journal_compact_preserves () =
  in_state_dir (fun dir ->
      let st, _ = J.open_store ~dir in
      J.append st ~digest:"a" (Mjson.Int 1);
      J.append st ~digest:"b" (Mjson.Int 2);
      J.append st ~digest:"a" (Mjson.Int 9);
      J.compact st ~entries:[ ("a", Mjson.Int 9); ("b", Mjson.Int 2) ];
      Alcotest.(check int) "append counter reset" 0
        (J.appended_since_compact st);
      Alcotest.(check int) "journal truncated" 0
        (Unix.stat (J.journal_file dir)).Unix.st_size;
      (* appends after compaction land in the fresh journal *)
      J.append st ~digest:"c" (Mjson.Int 7);
      J.close st;
      let r = J.recover ~dir in
      Alcotest.(check int) "snapshot + fresh journal" 3
        (List.length r.J.entries);
      Alcotest.(check (option int)) "compacted entry served" (Some 9)
        (assoc_int "a" r.J.entries);
      Alcotest.(check (option int)) "post-compaction append served" (Some 7)
        (assoc_int "c" r.J.entries))

(* The crash property: cut the journal's byte stream at ANY point and
   recovery yields exactly the frames wholly inside the prefix — never
   a phantom entry, never a corrupt one, last write per digest. *)
let prop_journal_crash_point =
  let gen =
    QCheck.Gen.(pair (list_size (1 -- 12) (pair (int_bound 3) small_nat)) nat)
  in
  let print (writes, cut) =
    Printf.sprintf "cut=%d writes=[%s]" cut
      (String.concat ";"
         (List.map (fun (d, v) -> Printf.sprintf "d%d=%d" d v) writes))
  in
  QCheck.Test.make ~count:100
    ~name:"journal: recovery at any crash point = committed prefix"
    (QCheck.make ~print gen)
    (fun (writes, cut) ->
      in_state_dir (fun dir ->
          let frames =
            List.map
              (fun (d, v) ->
                entry_frame (Printf.sprintf "d%d" d) (Mjson.Int v))
              writes
          in
          let all = String.concat "" frames in
          let cut = cut mod (String.length all + 1) in
          write_file (J.journal_file dir) (String.sub all 0 cut);
          let r = J.recover ~dir in
          (* expected: last write per digest among fully-written frames *)
          let expected = Hashtbl.create 8 in
          let off = ref 0 in
          List.iter2
            (fun (d, v) f ->
              if !off + String.length f <= cut then
                Hashtbl.replace expected (Printf.sprintf "d%d" d) v;
              off := !off + String.length f)
            writes frames;
          List.length r.J.entries = Hashtbl.length expected
          && List.for_all
               (fun (dg, j) ->
                 match (Mjson.to_int j, Hashtbl.find_opt expected dg) with
                 | Some v, Some v' -> v = v'
                 | _ -> false)
               r.J.entries))

(* --- stream: live subscriber frames ------------------------------------- *)

module S = Server.Stream

let mk_event i =
  {
    Trace.Event.seq = i;
    epoch = 0;
    ts_us = 0.;
    vt_us = float_of_int i;
    pid = 0;
    track = "t0";
    phase = Trace.Event.Instant;
    cat = "sched";
    name = "task_resume";
    args = [ ("pad", String.make 64 'x') ];
  }

(* Read every line the stream wrote to [cli] until it closes the
   connection, pumping [flush] while the socket has nothing yet. *)
let drain_stream ?(flush = fun () -> ()) cli =
  Unix.set_nonblock cli;
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec go patience =
    if patience = 0 then Alcotest.fail "stream never closed"
    else begin
      flush ();
      match Unix.read cli chunk 0 (Bytes.length chunk) with
      | 0 -> () (* EOF: the stream finished and closed its end *)
      | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go patience
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          Unix.sleepf 0.002;
          go (patience - 1)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go patience
    end
  in
  go 2500;
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter (fun l -> l <> "")
  |> List.map (fun l ->
         match Mjson.of_string l with
         | Ok j -> j
         | Error m -> Alcotest.failf "stream frame does not parse (%s): %S" m l)

let stream_live_frames () =
  let srv, cli = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close cli with Unix.Unix_error _ -> ())
    (fun () ->
      let t = S.create () in
      S.subscribe t ~schema:P.schema ~digest:"abc" srv;
      Alcotest.(check int) "one subscriber" 1 (S.subscriber_count t);
      S.publish t ~schema:P.schema ~digest:"abc" (mk_event 7);
      (* another job's events must not leak into this stream *)
      S.publish t ~schema:P.schema ~digest:"other" (mk_event 8);
      S.finish t ~schema:P.schema ~digest:"abc" ~status:"ok";
      match drain_stream ~flush:(fun () -> S.flush t) cli with
      | [ sub; ev; fin ] ->
          Alcotest.(check (option string)) "attach frame" (Some "subscribed")
            (member_str "type" sub);
          Alcotest.(check (option string)) "job tagged" (Some "abc")
            (member_str "job" sub);
          Alcotest.(check (option string)) "event frame" (Some "event")
            (member_str "type" ev);
          Alcotest.(check (option int)) "event payload" (Some 7)
            (Option.bind (Mjson.member "event" ev) (member_int "seq"));
          Alcotest.(check (option string)) "terminal frame" (Some "end")
            (member_str "type" fin);
          Alcotest.(check (option string)) "status" (Some "ok")
            (member_str "status" fin);
          Alcotest.(check int) "subscriber closed out" 0
            (S.subscriber_count t);
          Alcotest.(check int) "served counted" 1 (S.served_count t)
      | frames -> Alcotest.failf "expected 3 frames, got %d" (List.length frames))

(* A subscriber that stops reading must be dropped with a [lagged]
   frame — and must never block the publisher. *)
let stream_lagged_dropped () =
  let srv, cli = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close cli with Unix.Unix_error _ -> ())
    (fun () ->
      (* shrink the kernel's buffer so the bounded queue fills fast *)
      (try Unix.setsockopt_int srv Unix.SO_SNDBUF 4096
       with Unix.Unix_error _ -> ());
      let t = S.create ~max_queue:4 () in
      S.subscribe t ~schema:P.schema ~digest:"d" srv;
      (* the client reads nothing; publish until the drop triggers *)
      let i = ref 0 in
      while S.lagged_count t = 0 && !i < 100_000 do
        S.publish t ~schema:P.schema ~digest:"d" (mk_event !i);
        incr i
      done;
      Alcotest.(check int) "subscriber dropped as lagged" 1 (S.lagged_count t);
      (* publishing to the now-dead stream stays a cheap no-op *)
      S.publish t ~schema:P.schema ~digest:"d" (mk_event 0);
      let frames = drain_stream ~flush:(fun () -> S.flush t) cli in
      (match List.rev frames with
      | last :: _ ->
          Alcotest.(check (option string)) "final frame is lagged"
            (Some "lagged") (member_str "type" last);
          (match member_int "dropped" last with
          | Some n when n >= 1 -> ()
          | _ -> Alcotest.fail "lagged frame carries no dropped count")
      | [] -> Alcotest.fail "no frames before the drop");
      Alcotest.(check int) "registry empty after drop" 0
        (S.subscriber_count t))

(* --- daemon: end-to-end over a real socket ------------------------------ *)

let sock_counter = ref 0

let fresh_sock () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "cusand-test-%d-%d.sock" (Unix.getpid ()) !sock_counter)

(* Start a daemon on a fresh socket, run the body against it, then
   drain and hand the body's result plus the final stats back. *)
let with_daemon ?(cfg = fun c -> c) f =
  let path = fresh_sock () in
  let t = D.create (cfg (D.default_cfg ~socket_path:path)) in
  let server = Domain.spawn (fun () -> D.serve t) in
  let res =
    try f path t
    with e ->
      D.request_drain t;
      ignore (Domain.join server);
      raise e
  in
  D.request_drain t;
  let stats = Domain.join server in
  (res, stats)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

(* One full request/reply exchange. *)
let rpc path req =
  let fd = connect path in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      P.write_frame fd (P.request_to_json req);
      match P.read_frame fd with
      | Error e -> Alcotest.failf "rpc read: %s" (P.read_error_to_string e)
      | Ok line -> (
          match Mjson.of_string line with
          | Error m -> Alcotest.failf "rpc reply does not parse: %s" m
          | Ok j -> j))

(* Send raw bytes (optionally torn: no newline, half a frame) and read
   whatever the daemon answers. *)
let rpc_raw path bytes ~tear =
  let fd = connect path in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_all fd bytes;
      if tear then Unix.shutdown fd Unix.SHUTDOWN_SEND;
      match P.read_frame fd with
      | Error e -> Alcotest.failf "rpc_raw read: %s" (P.read_error_to_string e)
      | Ok line -> (
          match Mjson.of_string line with
          | Error m -> Alcotest.failf "rpc_raw reply does not parse: %s" m
          | Ok j -> j))

let daemon_health_and_lint () =
  let (), stats =
    with_daemon (fun path _t ->
        let h = rpc path P.Health in
        Alcotest.(check (option string)) "health ok" (Some "ok")
          (member_str "status" h);
        Alcotest.(check (option bool)) "not draining" (Some false)
          (member_bool "draining" h);
        (* A daemon-served job must be byte-identical to the same job
           run locally through the engine (the batch CLI path). *)
        let job = P.Lint { target = "jacobi/jacobi" } in
        let local = mstr (run_ok job) in
        let r1 = rpc path (P.Submit job) in
        Alcotest.(check (option string)) "ok" (Some "ok") (member_str "status" r1);
        Alcotest.(check (option bool)) "first run not cached" (Some false)
          (member_bool "cached" r1);
        Alcotest.(check string) "byte-identical to local run" local
          (mstr (Option.get (Mjson.member "result" r1)));
        let r2 = rpc path (P.Submit job) in
        Alcotest.(check (option bool)) "second run cache hit" (Some true)
          (member_bool "cached" r2);
        Alcotest.(check string) "cache serves identical bytes" local
          (mstr (Option.get (Mjson.member "result" r2))))
  in
  Alcotest.(check int) "served" 2 stats.D.served;
  Alcotest.(check int) "cache hits" 1 stats.D.cache_hits

let daemon_crash_isolated () =
  let (), stats =
    with_daemon (fun path _t ->
        let r = rpc path (P.Submit P.Boom) in
        Alcotest.(check (option string)) "crashed status" (Some "crashed")
          (member_str "status" r);
        let pm = Option.get (Mjson.member "post_mortem" r) in
        (match member_str "error" pm with
        | Some e when String.length e > 0 -> ()
        | _ -> Alcotest.fail "post_mortem carries no error");
        (* The daemon survived: it answers, and the recycled worker
           still executes jobs. *)
        let h = rpc path P.Health in
        Alcotest.(check (option string)) "daemon alive after crash" (Some "ok")
          (member_str "status" h);
        let r2 = rpc path (P.Submit (P.Lint { target = "jacobi/jacobi" })) in
        Alcotest.(check (option string)) "worker slot recycled" (Some "ok")
          (member_str "status" r2))
  in
  Alcotest.(check int) "one crash counted" 1 stats.D.crashed

let daemon_protocol_errors_survive () =
  let (), stats =
    with_daemon (fun path _t ->
        (* bad JSON *)
        let r = rpc_raw path "this is not json\n" ~tear:false in
        Alcotest.(check (option string)) "bad json -> error reply" (Some "error")
          (member_str "status" r);
        (* torn frame: half a request, then EOF *)
        let r = rpc_raw path "{\"op\":\"hea" ~tear:true in
        Alcotest.(check (option string)) "torn frame -> error reply"
          (Some "error") (member_str "status" r);
        (* valid JSON, hostile content *)
        let r = rpc_raw path "{\"op\":\"\\u0000\\\"<&\"}\n" ~tear:false in
        Alcotest.(check (option string)) "hostile op -> error reply"
          (Some "error") (member_str "status" r);
        (* instant close: no reply expected, daemon must not care *)
        let fd = connect path in
        Unix.close fd;
        let h = rpc path P.Health in
        Alcotest.(check (option string)) "alive after abuse" (Some "ok")
          (member_str "status" h))
  in
  Alcotest.(check int) "client errors counted" 3 stats.D.client_errors

(* Occupy the single worker with a spin long enough to observe the
   daemon under load, then check backpressure and health-under-load. *)
let daemon_backpressure () =
  let (), stats =
    with_daemon
      ~cfg:(fun c ->
        { c with D.workers = 1; queue_max = 1; watchdog = 60_000_000 })
      (fun path _t ->
        (* ~1s of in-sim spinning on the lone worker *)
        let spin_fd = connect path in
        P.write_frame spin_fd
          (P.request_to_json (P.Submit (P.Spin { steps = 8_000_000 })));
        (* admission is synchronous in the accept loop: once health
           reports the spin in flight, the next submit must shed *)
        let rec wait_busy n =
          if n = 0 then Alcotest.fail "spin never became in-flight"
          else
            let h = rpc path P.Health in
            if member_int "in_flight" h <> Some 1 then begin
              Unix.sleepf 0.01;
              wait_busy (n - 1)
            end
        in
        wait_busy 500;
        let b = rpc path (P.Submit (P.Lint { target = "jacobi/jacobi" })) in
        Alcotest.(check (option string)) "full queue sheds" (Some "busy")
          (member_str "status" b);
        (match member_int "retry_after" b with
        | Some n when n >= 1 -> ()
        | _ -> Alcotest.fail "busy reply carries no retry_after");
        Alcotest.(check (option int)) "high_water reported" (Some 1)
          (member_int "high_water" b);
        (* health stays answerable while saturated *)
        let h = rpc path P.Health in
        Alcotest.(check (option string)) "health under load" (Some "ok")
          (member_str "status" h);
        (* the wedged job itself resolves as a stalled verdict *)
        (match P.read_frame spin_fd with
        | Ok line -> (
            match Mjson.of_string line with
            | Ok r ->
                Alcotest.(check (option string)) "spin served" (Some "ok")
                  (member_str "status" r);
                Alcotest.(check (option string)) "spin stalled"
                  (Some "stalled")
                  (Option.bind (Mjson.member "result" r) (member_str "outcome"))
            | Error m -> Alcotest.failf "spin reply does not parse: %s" m)
        | Error e -> Alcotest.failf "spin reply: %s" (P.read_error_to_string e));
        Unix.close spin_fd)
  in
  Alcotest.(check int) "shed counted" 1 stats.D.shed;
  Alcotest.(check int) "stalled counted" 1 stats.D.stalled;
  Alcotest.(check bool) "queue never exceeded high water" true
    (stats.D.peak_in_flight <= 1)

(* A straggler past the drain deadline is cancelled and answered. *)
let daemon_drain_cancels_stragglers () =
  let (), stats =
    with_daemon
      ~cfg:(fun c ->
        {
          c with
          D.workers = 1;
          watchdog = 60_000_000;
          drain_timeout_s = 0.1;
        })
      (fun path t ->
        let spin_fd = connect path in
        P.write_frame spin_fd
          (P.request_to_json (P.Submit (P.Spin { steps = 8_000_000 })));
        let rec wait_inflight n =
          if n = 0 then Alcotest.fail "spin never became in-flight"
          else
            let h = rpc path P.Health in
            if member_int "in_flight" h <> Some 1 then begin
              Unix.sleepf 0.01;
              wait_inflight (n - 1)
            end
        in
        wait_inflight 500;
        D.request_drain t;
        (* the abandoned client is told, not left hanging *)
        (match P.read_frame spin_fd with
        | Ok line -> (
            match Mjson.of_string line with
            | Ok r ->
                Alcotest.(check (option string)) "straggler answered"
                  (Some "error") (member_str "status" r)
            | Error m -> Alcotest.failf "straggler reply does not parse: %s" m)
        | Error e ->
            Alcotest.failf "straggler reply: %s" (P.read_error_to_string e));
        Unix.close spin_fd)
  in
  Alcotest.(check int) "drain cancelled the straggler" 1 stats.D.drain_cancelled;
  (* the abandoned job is recorded and surfaced in the drain report *)
  let spin_digest = P.job_digest (P.Spin { steps = 8_000_000 }) in
  (match stats.D.abandoned with
  | [ (digest, desc) ] ->
      Alcotest.(check string) "abandoned digest recorded" spin_digest digest;
      Alcotest.(check bool) "abandoned description present" true
        (String.length desc > 0)
  | l -> Alcotest.failf "expected 1 abandoned job, got %d" (List.length l));
  match Mjson.member "abandoned_jobs" (D.stats_json stats) with
  | Some (Mjson.List [ entry ]) ->
      Alcotest.(check (option string)) "abandoned_jobs carries the digest"
        (Some spin_digest) (member_str "job" entry)
  | _ -> Alcotest.fail "stats JSON lacks the abandoned_jobs list"

(* --- daemon: durability, elasticity, streaming -------------------------- *)

(* Verdicts served before a crash must be served byte-identically after
   a restart from the same state dir — including when the dying daemon
   tore its final journal frame. *)
let daemon_durable_restart () =
  in_state_dir (fun dir ->
      let job = P.Lint { target = "jacobi/jacobi" } in
      let local = mstr (run_ok job) in
      let bytes1, stats1 =
        with_daemon
          ~cfg:(fun c -> { c with D.state_dir = Some dir })
          (fun path _t ->
            Alcotest.(check (option bool)) "health reports durable"
              (Some true)
              (member_bool "durable" (rpc path P.Health));
            let r = rpc path (P.Submit job) in
            Alcotest.(check (option bool)) "first run not cached" (Some false)
              (member_bool "cached" r);
            mstr (Option.get (Mjson.member "result" r)))
      in
      Alcotest.(check string) "generation 1 byte-identical to local" local
        bytes1;
      Alcotest.(check int) "verdict journalled" 1 stats1.D.journal_appends;
      (* simulate a kill -9 mid-append: garbage after the last frame *)
      let oc =
        open_out_gen [ Open_append; Open_binary ] 0o644 (J.journal_file dir)
      in
      output_string oc "\x00\x00\x01";
      close_out oc;
      let (), stats2 =
        with_daemon
          ~cfg:(fun c -> { c with D.state_dir = Some dir })
          (fun path _t ->
            let r = rpc path (P.Submit job) in
            Alcotest.(check (option bool))
              "replayed journal serves a cache hit" (Some true)
              (member_bool "cached" r);
            Alcotest.(check string) "recovered bytes identical" local
              (mstr (Option.get (Mjson.member "result" r))))
      in
      Alcotest.(check int) "one entry replayed" 1 stats2.D.replayed;
      Alcotest.(check int) "recovered hit counted" 1 stats2.D.cache_hits)

(* Admin resize: clamped to the window, reflected in health, and
   verdicts are unaffected by any resize sequence. *)
let daemon_resize_rpc () =
  let job = P.Lint { target = "jacobi/jacobi" } in
  let local = mstr (run_ok job) in
  let (), stats =
    with_daemon
      ~cfg:(fun c ->
        {
          c with
          D.workers = 1;
          workers_min = 1;
          workers_max = 4;
          (* park the load controller so only admin resizes move the
             pool and the pinned counters below stay deterministic *)
          scale_down_ticks = 1_000_000;
        })
      (fun path _t ->
        let resized k r =
          Option.bind (Mjson.member "resized" r) (member_int k)
        in
        let r = rpc path (P.Resize 3) in
        Alcotest.(check (option int)) "requested" (Some 3)
          (resized "requested" r);
        Alcotest.(check (option int)) "from previous size" (Some 1)
          (resized "from" r);
        Alcotest.(check (option int)) "to new size" (Some 3) (resized "to" r);
        Alcotest.(check (option int)) "health sees the grown pool" (Some 3)
          (member_int "workers" (rpc path P.Health));
        let r = rpc path (P.Resize 99) in
        Alcotest.(check (option int)) "overshoot clamps to workers_max"
          (Some 4) (resized "to" r);
        let r = rpc path (P.Resize 1) in
        Alcotest.(check (option int)) "shrink back" (Some 1) (resized "to" r);
        let r = rpc path (P.Submit job) in
        Alcotest.(check (option string)) "job ok after resizes" (Some "ok")
          (member_str "status" r);
        Alcotest.(check string) "verdict independent of resizing" local
          (mstr (Option.get (Mjson.member "result" r))))
  in
  Alcotest.(check int) "two growth events" 2 stats.D.resizes_up;
  Alcotest.(check int) "one shrink event" 1 stats.D.resizes_down

(* Subscribe: a live job streams subscribed → … → end; an unknown job
   is an error; a finished job answers instantly from the cache. *)
let daemon_subscribe_stream () =
  let spin = P.Spin { steps = 1_000_000 } in
  let digest = P.job_digest spin in
  let (), _stats =
    with_daemon
      ~cfg:(fun c -> { c with D.workers = 1; watchdog = 60_000_000 })
      (fun path _t ->
        let r = rpc path (P.Subscribe { digest = "feedfacefeedface" }) in
        Alcotest.(check (option string)) "unknown job is an error"
          (Some "error") (member_str "status" r);
        let spin_fd = connect path in
        P.write_frame spin_fd (P.request_to_json (P.Submit spin));
        let rec wait_inflight n =
          if n = 0 then Alcotest.fail "spin never became in-flight"
          else if member_int "in_flight" (rpc path P.Health) <> Some 1 then begin
            Unix.sleepf 0.01;
            wait_inflight (n - 1)
          end
        in
        wait_inflight 500;
        let sub_fd = connect path in
        (* a stuck daemon must fail the test, not hang it *)
        Unix.setsockopt_float sub_fd Unix.SO_RCVTIMEO 30.0;
        P.write_frame sub_fd (P.request_to_json (P.Subscribe { digest }));
        let ic = Unix.in_channel_of_descr sub_fd in
        let frame () =
          match Mjson.of_string (input_line ic) with
          | Ok j -> j
          | Error m -> Alcotest.failf "stream frame does not parse: %s" m
        in
        let first = frame () in
        Alcotest.(check (option string)) "attach acknowledged"
          (Some "subscribed") (member_str "type" first);
        Alcotest.(check (option string)) "stream tagged with the job"
          (Some digest) (member_str "job" first);
        let rec until_end () =
          let j = frame () in
          if member_str "type" j = Some "end" then j else until_end ()
        in
        let fin = until_end () in
        Alcotest.(check (option string)) "live stream ends with the verdict"
          (Some "stalled") (member_str "status" fin);
        (* the submitting client still gets its full reply *)
        (match P.read_frame spin_fd with
        | Ok line -> (
            match Mjson.of_string line with
            | Ok r ->
                Alcotest.(check (option string)) "spin served" (Some "ok")
                  (member_str "status" r)
            | Error m -> Alcotest.failf "spin reply does not parse: %s" m)
        | Error e -> Alcotest.failf "spin reply: %s" (P.read_error_to_string e));
        Unix.close spin_fd;
        (try Unix.close sub_fd with Unix.Unix_error _ -> ());
        (* now cached: subscribe answers with an immediate end frame *)
        let r = rpc path (P.Subscribe { digest }) in
        Alcotest.(check (option string)) "cached job ends instantly"
          (Some "end") (member_str "type" r);
        Alcotest.(check (option string)) "with a cached status"
          (Some "cached") (member_str "status" r))
  in
  ()

(* The load controller: admission depth past the threshold grows the
   pool toward workers_max; a drained queue shrinks it back to
   workers_min after the hysteresis ticks. Health RPCs drive the
   accept-loop ticks, so the polls below are also the clock. *)
let daemon_elastic_scales () =
  let (), stats =
    with_daemon
      ~cfg:(fun c ->
        {
          c with
          D.workers = 1;
          workers_min = 1;
          workers_max = 3;
          queue_max = 8;
          scale_up_depth = 1;
          scale_down_ticks = 2;
          watchdog = 60_000_000;
        })
      (fun path _t ->
        let fds =
          List.init 3 (fun i ->
              let fd = connect path in
              P.write_frame fd
                (P.request_to_json (P.Submit (P.Spin { steps = 1_500_000 + i })));
              fd)
        in
        let rec wait_workers n target =
          if n = 0 then
            Alcotest.failf "pool never reached %d workers" target
          else if member_int "workers" (rpc path P.Health) <> Some target
          then begin
            Unix.sleepf 0.01;
            wait_workers (n - 1) target
          end
        in
        wait_workers 500 3;
        (* every spin resolves (watchdog verdicts) on the grown pool *)
        List.iter
          (fun fd ->
            (match P.read_frame fd with
            | Ok line -> (
                match Mjson.of_string line with
                | Ok r ->
                    Alcotest.(check (option string)) "spin stalled"
                      (Some "stalled")
                      (Option.bind (Mjson.member "result" r)
                         (member_str "outcome"))
                | Error m -> Alcotest.failf "spin reply does not parse: %s" m)
            | Error e ->
                Alcotest.failf "spin reply: %s" (P.read_error_to_string e));
            Unix.close fd)
          fds;
        (* idle hysteresis retires the surplus back to the floor *)
        wait_workers 500 1)
  in
  Alcotest.(check bool) "growth events recorded" true (stats.D.resizes_up >= 1);
  Alcotest.(check bool) "shrink events recorded" true
    (stats.D.resizes_down >= 2);
  Alcotest.(check int) "all spins stalled" 3 stats.D.stalled

(* --- chaos acceptance ---------------------------------------------------
   Across 10 seeds, a job mix where >= 30% of jobs crash (boom) or
   wedge (spin): the daemon must serve every remaining job with replies
   byte-identical to a local batch run, emit a post-mortem for every
   killed job, keep the queue bounded, and drain cleanly. *)

let chaos_jobs seed =
  [
    P.Lint { target = "jacobi/jacobi" };
    P.Boom;
    P.Soak { case = "legacy/default_barrier_blocking"; seed; faults = None };
    P.Spin { steps = 30_000 };
    P.Soak
      {
        case = "cuda-to-mpi/send_device_nosync_nok";
        seed;
        faults = Some "kernel_launch%0.3:fail,mpi_send%0.2:drop";
      };
    P.Boom;
  ]

let daemon_chaos_acceptance () =
  (* Local ground truth, computed once per distinct job. *)
  let expected = Hashtbl.create 32 in
  let local job =
    let key = P.job_key job in
    match Hashtbl.find_opt expected key with
    | Some v -> v
    | None ->
        let v = mstr (run_ok job) in
        Hashtbl.add expected key v;
        v
  in
  let seeds = List.init 10 (fun i -> (i * 7) + 1) in
  let (), stats =
    with_daemon
      ~cfg:(fun c -> { c with D.workers = 2; queue_max = 4; cache_cap = 0 })
      (fun path _t ->
        List.iter
          (fun seed ->
            List.iter
              (fun job ->
                let r = rpc path (P.Submit job) in
                match job with
                | P.Boom ->
                    Alcotest.(check (option string))
                      (Fmt.str "seed %d: boom reaped" seed)
                      (Some "crashed") (member_str "status" r);
                    (match
                       Option.bind (Mjson.member "post_mortem" r)
                         (member_str "error")
                     with
                    | Some e when String.length e > 0 -> ()
                    | _ -> Alcotest.fail "killed job has no post-mortem")
                | P.Spin _ ->
                    Alcotest.(check (option string))
                      (Fmt.str "seed %d: wedge stalled" seed)
                      (Some "stalled")
                      (Option.bind (Mjson.member "result" r)
                         (member_str "outcome"))
                | _ ->
                    Alcotest.(check (option string))
                      (Fmt.str "seed %d: %s ok" seed (P.job_describe job))
                      (Some "ok") (member_str "status" r);
                    Alcotest.(check string)
                      (Fmt.str "seed %d: %s byte-identical" seed
                         (P.job_describe job))
                      (local job)
                      (mstr (Option.get (Mjson.member "result" r))))
              (chaos_jobs seed);
            (* queue stays bounded while the chaos runs *)
            match member_int "in_flight" (rpc path P.Health) with
            | Some n when n <= 4 -> ()
            | n ->
                Alcotest.failf "queue exceeded bound: %s"
                  (match n with Some n -> string_of_int n | None -> "?"))
          seeds)
  in
  Alcotest.(check int) "every killed job has a post-mortem" 20 stats.D.crashed;
  Alcotest.(check int) "every wedge became a stalled verdict" 10 stats.D.stalled;
  Alcotest.(check bool) "bounded queue never exceeded" true
    (stats.D.peak_in_flight <= 4);
  Alcotest.(check int) "nothing abandoned" 0 stats.D.drain_cancelled

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          QCheck_alcotest.to_alcotest prop_request_roundtrip;
          QCheck_alcotest.to_alcotest prop_parse_never_raises;
          Alcotest.test_case "parse errors are named" `Quick
            parse_request_errors;
          Alcotest.test_case "frame roundtrip" `Quick frame_roundtrip;
          Alcotest.test_case "closed peer" `Quick frame_closed;
          Alcotest.test_case "truncated frame" `Quick frame_truncated;
          Alcotest.test_case "oversized frame" `Quick frame_oversized;
          Alcotest.test_case "retry_after hint pinned" `Quick
            retry_after_hint_pinned;
        ] );
      ( "engine",
        [
          Alcotest.test_case "deterministic results" `Quick engine_deterministic;
          Alcotest.test_case "unknown ids rejected" `Quick engine_rejects_unknown;
          Alcotest.test_case "boom raises" `Quick engine_boom_raises;
          Alcotest.test_case "spin stalls at budget" `Quick engine_spin_stalls;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "deterministic under seed" `Quick
            backoff_deterministic;
          Alcotest.test_case "pinned schedule" `Quick backoff_pinned;
          Alcotest.test_case "with_retries spends schedule" `Quick
            with_retries_spends_schedule;
          Alcotest.test_case "with_retries exhausts" `Quick with_retries_exhausts;
          Alcotest.test_case "breaker transitions pinned" `Quick
            breaker_pinned_transitions;
          Alcotest.test_case "breaker call classifies" `Quick
            breaker_call_classifies;
        ] );
      ( "journal",
        [
          Alcotest.test_case "empty store" `Quick journal_empty;
          Alcotest.test_case "roundtrip, last write wins" `Quick
            journal_roundtrip_last_wins;
          Alcotest.test_case "torn tail truncated" `Quick
            journal_torn_tail_truncated;
          Alcotest.test_case "bit flip keeps valid prefix" `Quick
            journal_bitflip_keeps_prefix;
          Alcotest.test_case "snapshot then journal" `Quick
            journal_snapshot_then_journal;
          Alcotest.test_case "compaction preserves entries" `Quick
            journal_compact_preserves;
          QCheck_alcotest.to_alcotest prop_journal_crash_point;
        ] );
      ( "stream",
        [
          Alcotest.test_case "subscribed, event, end" `Quick stream_live_frames;
          Alcotest.test_case "slow subscriber dropped as lagged" `Quick
            stream_lagged_dropped;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "health, lint, cache" `Quick daemon_health_and_lint;
          Alcotest.test_case "crash isolation" `Quick daemon_crash_isolated;
          Alcotest.test_case "protocol abuse survived" `Quick
            daemon_protocol_errors_survive;
          Alcotest.test_case "backpressure + health under load" `Quick
            daemon_backpressure;
          Alcotest.test_case "drain cancels stragglers" `Quick
            daemon_drain_cancels_stragglers;
          Alcotest.test_case "durable restart serves identical bytes" `Quick
            daemon_durable_restart;
          Alcotest.test_case "resize rpc clamps and preserves verdicts" `Quick
            daemon_resize_rpc;
          Alcotest.test_case "subscribe streams a live job" `Quick
            daemon_subscribe_stream;
          Alcotest.test_case "elastic pool scales with load" `Quick
            daemon_elastic_scales;
        ] );
      ("chaos", [ Alcotest.test_case "acceptance" `Slow daemon_chaos_acceptance ]);
    ]
