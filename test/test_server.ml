(* Tests for the cusand analysis daemon stack: the wire protocol
   (roundtrips, hostile and torn frames), the job engine's determinism
   (the property that makes the result cache and the daemon-vs-batch
   byte-identity contract sound), the deterministic retry backoff, and
   the daemon itself end-to-end over a real Unix-domain socket —
   including the chaos acceptance: with a third of the jobs crashing or
   wedging, every surviving job is served byte-identically to a local
   batch run, every killed job gets a post-mortem, the queue stays
   bounded, and the drain completes cleanly. *)

module Mjson = Reporting.Mjson
module P = Server.Protocol
module D = Server.Daemon
module E = Server.Engine

let mstr = Mjson.to_string

let member_str k j =
  Mjson.member k j |> Fun.flip Option.bind Mjson.to_str

let member_int k j =
  Mjson.member k j |> Fun.flip Option.bind Mjson.to_int

let member_bool k j =
  Mjson.member k j |> Fun.flip Option.bind Mjson.to_bool

(* --- protocol: requests roundtrip the wire ------------------------------ *)

let string_gen =
  (* Full byte range minus '\255' markers QCheck dislikes printing:
     hostile on purpose — quotes, braces, newlines, NULs, high bytes. *)
  QCheck.Gen.(string_size ~gen:(map Char.chr (0 -- 255)) (0 -- 40))

let job_gen : P.job QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [
      map (fun target -> P.Lint { target }) string_gen;
      map3
        (fun case seed faults -> P.Soak { case; seed; faults })
        string_gen small_signed_int
        (option string_gen);
      map2 (fun app flavor -> P.Bench { app; flavor }) string_gen string_gen;
      return P.Boom;
      map (fun steps -> P.Spin { steps = steps + 1 }) small_nat;
    ]

let request_gen : P.request QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [
      map (fun j -> P.Submit j) job_gen;
      return P.Health;
      return P.Stats;
      return P.Shutdown;
    ]

let request_print r = mstr (P.request_to_json r)

let prop_request_roundtrip =
  QCheck.Test.make ~count:500 ~name:"request -> json -> string -> request"
    (QCheck.make ~print:request_print request_gen)
    (fun r -> P.parse_request (mstr (P.request_to_json r)) = Ok r)

(* Hostile bytes must decode to Ok or Error — never an exception for
   the accept loop to trip over. *)
let prop_parse_never_raises =
  QCheck.Test.make ~count:500 ~name:"parse_request total on hostile input"
    (QCheck.make ~print:(Printf.sprintf "%S") string_gen)
    (fun s ->
      match P.parse_request s with Ok _ | Error _ -> true)

(* A parse failure must name the problem: bad JSON, bad schema, bad op,
   missing field. *)
let parse_request_errors () =
  let err s =
    match P.parse_request s with
    | Error m -> m
    | Ok _ -> Alcotest.failf "accepted %S" s
  in
  let contains ~sub s =
    let n = String.length s and m = String.length sub in
    let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "bad json named" true
    (contains ~sub:"bad JSON" (err "{not json"));
  Alcotest.(check bool) "unknown schema named" true
    (contains ~sub:"schema" (err {|{"schema":"bogus/9","op":"health"}|}));
  Alcotest.(check bool) "unknown op named" true
    (contains ~sub:"unknown op" (err {|{"op":"frobnicate"}|}));
  Alcotest.(check bool) "missing field named" true
    (contains ~sub:"target" (err {|{"op":"lint"}|}));
  Alcotest.(check bool) "missing op named" true
    (contains ~sub:"op" (err {|{"schema":"cusand/1"}|}))

(* --- protocol: framing over a real socketpair --------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

let frame_roundtrip () =
  with_socketpair (fun a b ->
      let doc = P.error_reply "x\"y\nz" in
      P.write_frame a doc;
      match P.read_frame b with
      | Ok line -> (
          match Mjson.of_string line with
          | Ok j -> Alcotest.(check string) "frame roundtrips" (mstr doc) (mstr j)
          | Error m -> Alcotest.failf "reply does not parse: %s" m)
      | Error e -> Alcotest.failf "read failed: %s" (P.read_error_to_string e))

let frame_closed () =
  with_socketpair (fun a b ->
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      match P.read_frame b with
      | Error P.Closed -> ()
      | Error e -> Alcotest.failf "expected Closed, got %s" (P.read_error_to_string e)
      | Ok s -> Alcotest.failf "expected Closed, got frame %S" s)

let frame_truncated () =
  with_socketpair (fun a b ->
      write_all a "{\"op\":\"health\"";
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      match P.read_frame b with
      | Error (P.Truncated partial) ->
          Alcotest.(check string) "partial bytes kept" "{\"op\":\"health\"" partial
      | Error e ->
          Alcotest.failf "expected Truncated, got %s" (P.read_error_to_string e)
      | Ok s -> Alcotest.failf "expected Truncated, got frame %S" s)

let frame_oversized () =
  with_socketpair (fun a b ->
      (* Feed > max_frame bytes with no newline from a writer thread
         (the reader must give up; a single-threaded write could fill
         both socket buffers and deadlock the test). *)
      let writer =
        Thread.create
          (fun () ->
            try write_all a (String.make ((P.max_frame + 8192) land max_int) 'a')
            with Unix.Unix_error _ -> ())
          ()
      in
      let r = P.read_frame b in
      (try Unix.close b with Unix.Unix_error _ -> ());
      Thread.join writer;
      match r with
      | Error (P.Oversized _) -> ()
      | Error e ->
          Alcotest.failf "expected Oversized, got %s" (P.read_error_to_string e)
      | Ok s -> Alcotest.failf "expected Oversized, got %d-byte frame" (String.length s))

(* --- engine: determinism (cache + byte-identity soundness) -------------- *)

let run_ok job =
  match E.run_job job with
  | Ok j -> j
  | Error m -> Alcotest.failf "job failed: %s" m

let engine_deterministic () =
  List.iter
    (fun job ->
      let a = mstr (run_ok job) in
      let b = mstr (run_ok job) in
      Alcotest.(check string) (P.job_describe job) a b)
    [
      P.Lint { target = "jacobi/jacobi" };
      P.Soak { case = "legacy/default_barrier_blocking"; seed = 0; faults = None };
      P.Soak
        {
          case = "cuda-to-mpi/send_device_nosync_nok";
          seed = 11;
          faults = Some "kernel_launch%0.3:fail";
        };
      P.Spin { steps = 20_000 };
    ]

let engine_rejects_unknown () =
  let check_err job sub =
    match E.run_job job with
    | Ok _ -> Alcotest.failf "%s unexpectedly succeeded" (P.job_describe job)
    | Error m ->
        let contains =
          let n = String.length m and k = String.length sub in
          let rec at i = i + k <= n && (String.sub m i k = sub || at (i + 1)) in
          at 0
        in
        Alcotest.(check bool) (Fmt.str "%s names %s" m sub) true contains
  in
  check_err (P.Lint { target = "no/such" }) "known:";
  check_err (P.Soak { case = "no/such"; seed = 0; faults = None }) "known:";
  check_err
    (P.Soak
       { case = "legacy/default_barrier_blocking"; seed = 0; faults = Some "%%%" })
    "fault spec";
  check_err (P.Bench { app = "no-such"; flavor = "cusan" }) "known:";
  check_err (P.Bench { app = "jacobi"; flavor = "warp9" }) "flavor"

let engine_boom_raises () =
  match E.run_job P.Boom with
  | exception E.Chaos_drill -> ()
  | _ -> Alcotest.fail "boom did not raise Chaos_drill"

let engine_spin_stalls () =
  let j = run_ok (P.Spin { steps = 20_000 }) in
  Alcotest.(check (option string)) "outcome" (Some "stalled") (member_str "outcome" j);
  let stall = Option.get (Mjson.member "stall" j) in
  Alcotest.(check (option int)) "budget hit" (Some 20_000) (member_int "steps" stall)

(* --- resilience: deterministic seeded backoff --------------------------- *)

let backoff_deterministic () =
  Alcotest.(check (list int)) "same seed, same schedule"
    (Resilience.backoff_schedule ~seed:42 ~attempts:8)
    (Resilience.backoff_schedule ~seed:42 ~attempts:8);
  Alcotest.(check bool) "different seeds decorrelate" true
    (Resilience.backoff_schedule ~seed:1 ~attempts:8
    <> Resilience.backoff_schedule ~seed:2 ~attempts:8)

(* The pinned sequence: uncapped exponential base doubling into the
   1024 cap, plus the seed-42 Prng jitter. A change to the Prng stream,
   the cap, or the jitter window shows up here as a literal diff. *)
let backoff_pinned () =
  Alcotest.(check (list int)) "unjittered base doubles then caps"
    [ 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 1024; 1024 ]
    (List.init 12 (fun i -> Resilience.backoff_yields ~attempt:(i + 1) ()));
  Alcotest.(check (list int)) "seed 42 jittered schedule"
    [ 3; 7; 10; 20; 50; 70 ]
    (Resilience.backoff_schedule ~seed:42 ~attempts:6)

let with_retries_spends_schedule () =
  (* The retry loop must spend exactly the schedule the seed predicts,
     via whatever medium on_backoff maps yields onto. *)
  let seed = 42 in
  let spent = ref [] in
  let attempts_seen = ref [] in
  let v =
    Resilience.with_retries ~label:"t" ~max_attempts:4
      ~jitter:(Faultsim.Prng.create seed)
      ~on_backoff:(fun ~yields -> spent := !spent @ [ yields ])
      ~retryable:(function Failure _ -> true | _ -> false)
      (fun ~attempt ->
        attempts_seen := !attempts_seen @ [ attempt ];
        if attempt < 3 then failwith "transient" else 99)
  in
  Alcotest.(check int) "value" 99 v;
  Alcotest.(check (list int)) "attempts" [ 1; 2; 3 ] !attempts_seen;
  Alcotest.(check (list int)) "backoff spent = predicted schedule"
    (Resilience.backoff_schedule ~seed ~attempts:2)
    !spent

let with_retries_exhausts () =
  match
    Resilience.with_retries ~label:"t" ~max_attempts:3
      ~on_backoff:(fun ~yields:_ -> ())
      ~retryable:(function Failure _ -> true | _ -> false)
      (fun ~attempt:_ -> failwith "always")
  with
  | _ -> Alcotest.fail "expected Retries_exhausted"
  | exception Resilience.Retries_exhausted { attempts = 3; last = Failure _; _ }
    ->
      ()
  | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e)

(* --- daemon: end-to-end over a real socket ------------------------------ *)

let sock_counter = ref 0

let fresh_sock () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "cusand-test-%d-%d.sock" (Unix.getpid ()) !sock_counter)

(* Start a daemon on a fresh socket, run the body against it, then
   drain and hand the body's result plus the final stats back. *)
let with_daemon ?(cfg = fun c -> c) f =
  let path = fresh_sock () in
  let t = D.create (cfg (D.default_cfg ~socket_path:path)) in
  let server = Domain.spawn (fun () -> D.serve t) in
  let res =
    try f path t
    with e ->
      D.request_drain t;
      ignore (Domain.join server);
      raise e
  in
  D.request_drain t;
  let stats = Domain.join server in
  (res, stats)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

(* One full request/reply exchange. *)
let rpc path req =
  let fd = connect path in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      P.write_frame fd (P.request_to_json req);
      match P.read_frame fd with
      | Error e -> Alcotest.failf "rpc read: %s" (P.read_error_to_string e)
      | Ok line -> (
          match Mjson.of_string line with
          | Error m -> Alcotest.failf "rpc reply does not parse: %s" m
          | Ok j -> j))

(* Send raw bytes (optionally torn: no newline, half a frame) and read
   whatever the daemon answers. *)
let rpc_raw path bytes ~tear =
  let fd = connect path in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_all fd bytes;
      if tear then Unix.shutdown fd Unix.SHUTDOWN_SEND;
      match P.read_frame fd with
      | Error e -> Alcotest.failf "rpc_raw read: %s" (P.read_error_to_string e)
      | Ok line -> (
          match Mjson.of_string line with
          | Error m -> Alcotest.failf "rpc_raw reply does not parse: %s" m
          | Ok j -> j))

let daemon_health_and_lint () =
  let (), stats =
    with_daemon (fun path _t ->
        let h = rpc path P.Health in
        Alcotest.(check (option string)) "health ok" (Some "ok")
          (member_str "status" h);
        Alcotest.(check (option bool)) "not draining" (Some false)
          (member_bool "draining" h);
        (* A daemon-served job must be byte-identical to the same job
           run locally through the engine (the batch CLI path). *)
        let job = P.Lint { target = "jacobi/jacobi" } in
        let local = mstr (run_ok job) in
        let r1 = rpc path (P.Submit job) in
        Alcotest.(check (option string)) "ok" (Some "ok") (member_str "status" r1);
        Alcotest.(check (option bool)) "first run not cached" (Some false)
          (member_bool "cached" r1);
        Alcotest.(check string) "byte-identical to local run" local
          (mstr (Option.get (Mjson.member "result" r1)));
        let r2 = rpc path (P.Submit job) in
        Alcotest.(check (option bool)) "second run cache hit" (Some true)
          (member_bool "cached" r2);
        Alcotest.(check string) "cache serves identical bytes" local
          (mstr (Option.get (Mjson.member "result" r2))))
  in
  Alcotest.(check int) "served" 2 stats.D.served;
  Alcotest.(check int) "cache hits" 1 stats.D.cache_hits

let daemon_crash_isolated () =
  let (), stats =
    with_daemon (fun path _t ->
        let r = rpc path (P.Submit P.Boom) in
        Alcotest.(check (option string)) "crashed status" (Some "crashed")
          (member_str "status" r);
        let pm = Option.get (Mjson.member "post_mortem" r) in
        (match member_str "error" pm with
        | Some e when String.length e > 0 -> ()
        | _ -> Alcotest.fail "post_mortem carries no error");
        (* The daemon survived: it answers, and the recycled worker
           still executes jobs. *)
        let h = rpc path P.Health in
        Alcotest.(check (option string)) "daemon alive after crash" (Some "ok")
          (member_str "status" h);
        let r2 = rpc path (P.Submit (P.Lint { target = "jacobi/jacobi" })) in
        Alcotest.(check (option string)) "worker slot recycled" (Some "ok")
          (member_str "status" r2))
  in
  Alcotest.(check int) "one crash counted" 1 stats.D.crashed

let daemon_protocol_errors_survive () =
  let (), stats =
    with_daemon (fun path _t ->
        (* bad JSON *)
        let r = rpc_raw path "this is not json\n" ~tear:false in
        Alcotest.(check (option string)) "bad json -> error reply" (Some "error")
          (member_str "status" r);
        (* torn frame: half a request, then EOF *)
        let r = rpc_raw path "{\"op\":\"hea" ~tear:true in
        Alcotest.(check (option string)) "torn frame -> error reply"
          (Some "error") (member_str "status" r);
        (* valid JSON, hostile content *)
        let r = rpc_raw path "{\"op\":\"\\u0000\\\"<&\"}\n" ~tear:false in
        Alcotest.(check (option string)) "hostile op -> error reply"
          (Some "error") (member_str "status" r);
        (* instant close: no reply expected, daemon must not care *)
        let fd = connect path in
        Unix.close fd;
        let h = rpc path P.Health in
        Alcotest.(check (option string)) "alive after abuse" (Some "ok")
          (member_str "status" h))
  in
  Alcotest.(check int) "client errors counted" 3 stats.D.client_errors

(* Occupy the single worker with a spin long enough to observe the
   daemon under load, then check backpressure and health-under-load. *)
let daemon_backpressure () =
  let (), stats =
    with_daemon
      ~cfg:(fun c ->
        { c with D.workers = 1; queue_max = 1; watchdog = 60_000_000 })
      (fun path _t ->
        (* ~1s of in-sim spinning on the lone worker *)
        let spin_fd = connect path in
        P.write_frame spin_fd
          (P.request_to_json (P.Submit (P.Spin { steps = 8_000_000 })));
        (* admission is synchronous in the accept loop: once health
           reports the spin in flight, the next submit must shed *)
        let rec wait_busy n =
          if n = 0 then Alcotest.fail "spin never became in-flight"
          else
            let h = rpc path P.Health in
            if member_int "in_flight" h <> Some 1 then begin
              Unix.sleepf 0.01;
              wait_busy (n - 1)
            end
        in
        wait_busy 500;
        let b = rpc path (P.Submit (P.Lint { target = "jacobi/jacobi" })) in
        Alcotest.(check (option string)) "full queue sheds" (Some "busy")
          (member_str "status" b);
        (match member_int "retry_after" b with
        | Some n when n >= 1 -> ()
        | _ -> Alcotest.fail "busy reply carries no retry_after");
        Alcotest.(check (option int)) "high_water reported" (Some 1)
          (member_int "high_water" b);
        (* health stays answerable while saturated *)
        let h = rpc path P.Health in
        Alcotest.(check (option string)) "health under load" (Some "ok")
          (member_str "status" h);
        (* the wedged job itself resolves as a stalled verdict *)
        (match P.read_frame spin_fd with
        | Ok line -> (
            match Mjson.of_string line with
            | Ok r ->
                Alcotest.(check (option string)) "spin served" (Some "ok")
                  (member_str "status" r);
                Alcotest.(check (option string)) "spin stalled"
                  (Some "stalled")
                  (Option.bind (Mjson.member "result" r) (member_str "outcome"))
            | Error m -> Alcotest.failf "spin reply does not parse: %s" m)
        | Error e -> Alcotest.failf "spin reply: %s" (P.read_error_to_string e));
        Unix.close spin_fd)
  in
  Alcotest.(check int) "shed counted" 1 stats.D.shed;
  Alcotest.(check int) "stalled counted" 1 stats.D.stalled;
  Alcotest.(check bool) "queue never exceeded high water" true
    (stats.D.peak_in_flight <= 1)

(* A straggler past the drain deadline is cancelled and answered. *)
let daemon_drain_cancels_stragglers () =
  let (), stats =
    with_daemon
      ~cfg:(fun c ->
        {
          c with
          D.workers = 1;
          watchdog = 60_000_000;
          drain_timeout_s = 0.1;
        })
      (fun path t ->
        let spin_fd = connect path in
        P.write_frame spin_fd
          (P.request_to_json (P.Submit (P.Spin { steps = 8_000_000 })));
        let rec wait_inflight n =
          if n = 0 then Alcotest.fail "spin never became in-flight"
          else
            let h = rpc path P.Health in
            if member_int "in_flight" h <> Some 1 then begin
              Unix.sleepf 0.01;
              wait_inflight (n - 1)
            end
        in
        wait_inflight 500;
        D.request_drain t;
        (* the abandoned client is told, not left hanging *)
        (match P.read_frame spin_fd with
        | Ok line -> (
            match Mjson.of_string line with
            | Ok r ->
                Alcotest.(check (option string)) "straggler answered"
                  (Some "error") (member_str "status" r)
            | Error m -> Alcotest.failf "straggler reply does not parse: %s" m)
        | Error e ->
            Alcotest.failf "straggler reply: %s" (P.read_error_to_string e));
        Unix.close spin_fd)
  in
  Alcotest.(check int) "drain cancelled the straggler" 1 stats.D.drain_cancelled

(* --- chaos acceptance ---------------------------------------------------
   Across 10 seeds, a job mix where >= 30% of jobs crash (boom) or
   wedge (spin): the daemon must serve every remaining job with replies
   byte-identical to a local batch run, emit a post-mortem for every
   killed job, keep the queue bounded, and drain cleanly. *)

let chaos_jobs seed =
  [
    P.Lint { target = "jacobi/jacobi" };
    P.Boom;
    P.Soak { case = "legacy/default_barrier_blocking"; seed; faults = None };
    P.Spin { steps = 30_000 };
    P.Soak
      {
        case = "cuda-to-mpi/send_device_nosync_nok";
        seed;
        faults = Some "kernel_launch%0.3:fail,mpi_send%0.2:drop";
      };
    P.Boom;
  ]

let daemon_chaos_acceptance () =
  (* Local ground truth, computed once per distinct job. *)
  let expected = Hashtbl.create 32 in
  let local job =
    let key = P.job_key job in
    match Hashtbl.find_opt expected key with
    | Some v -> v
    | None ->
        let v = mstr (run_ok job) in
        Hashtbl.add expected key v;
        v
  in
  let seeds = List.init 10 (fun i -> (i * 7) + 1) in
  let (), stats =
    with_daemon
      ~cfg:(fun c -> { c with D.workers = 2; queue_max = 4; cache_cap = 0 })
      (fun path _t ->
        List.iter
          (fun seed ->
            List.iter
              (fun job ->
                let r = rpc path (P.Submit job) in
                match job with
                | P.Boom ->
                    Alcotest.(check (option string))
                      (Fmt.str "seed %d: boom reaped" seed)
                      (Some "crashed") (member_str "status" r);
                    (match
                       Option.bind (Mjson.member "post_mortem" r)
                         (member_str "error")
                     with
                    | Some e when String.length e > 0 -> ()
                    | _ -> Alcotest.fail "killed job has no post-mortem")
                | P.Spin _ ->
                    Alcotest.(check (option string))
                      (Fmt.str "seed %d: wedge stalled" seed)
                      (Some "stalled")
                      (Option.bind (Mjson.member "result" r)
                         (member_str "outcome"))
                | _ ->
                    Alcotest.(check (option string))
                      (Fmt.str "seed %d: %s ok" seed (P.job_describe job))
                      (Some "ok") (member_str "status" r);
                    Alcotest.(check string)
                      (Fmt.str "seed %d: %s byte-identical" seed
                         (P.job_describe job))
                      (local job)
                      (mstr (Option.get (Mjson.member "result" r))))
              (chaos_jobs seed);
            (* queue stays bounded while the chaos runs *)
            match member_int "in_flight" (rpc path P.Health) with
            | Some n when n <= 4 -> ()
            | n ->
                Alcotest.failf "queue exceeded bound: %s"
                  (match n with Some n -> string_of_int n | None -> "?"))
          seeds)
  in
  Alcotest.(check int) "every killed job has a post-mortem" 20 stats.D.crashed;
  Alcotest.(check int) "every wedge became a stalled verdict" 10 stats.D.stalled;
  Alcotest.(check bool) "bounded queue never exceeded" true
    (stats.D.peak_in_flight <= 4);
  Alcotest.(check int) "nothing abandoned" 0 stats.D.drain_cancelled

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          QCheck_alcotest.to_alcotest prop_request_roundtrip;
          QCheck_alcotest.to_alcotest prop_parse_never_raises;
          Alcotest.test_case "parse errors are named" `Quick
            parse_request_errors;
          Alcotest.test_case "frame roundtrip" `Quick frame_roundtrip;
          Alcotest.test_case "closed peer" `Quick frame_closed;
          Alcotest.test_case "truncated frame" `Quick frame_truncated;
          Alcotest.test_case "oversized frame" `Quick frame_oversized;
        ] );
      ( "engine",
        [
          Alcotest.test_case "deterministic results" `Quick engine_deterministic;
          Alcotest.test_case "unknown ids rejected" `Quick engine_rejects_unknown;
          Alcotest.test_case "boom raises" `Quick engine_boom_raises;
          Alcotest.test_case "spin stalls at budget" `Quick engine_spin_stalls;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "deterministic under seed" `Quick
            backoff_deterministic;
          Alcotest.test_case "pinned schedule" `Quick backoff_pinned;
          Alcotest.test_case "with_retries spends schedule" `Quick
            with_retries_spends_schedule;
          Alcotest.test_case "with_retries exhausts" `Quick with_retries_exhausts;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "health, lint, cache" `Quick daemon_health_and_lint;
          Alcotest.test_case "crash isolation" `Quick daemon_crash_isolated;
          Alcotest.test_case "protocol abuse survived" `Quick
            daemon_protocol_errors_survive;
          Alcotest.test_case "backpressure + health under load" `Quick
            daemon_backpressure;
          Alcotest.test_case "drain cancels stragglers" `Quick
            daemon_drain_cancels_stragglers;
        ] );
      ("chaos", [ Alcotest.test_case "acceptance" `Slow daemon_chaos_acceptance ]);
    ]
