(* Tests for the flight recorder: the ring buffer, recorder semantics
   (attribution, epochs, the disabled fast path), the Chrome trace-event
   export parsed back through Mjson, and the end-to-end guarantees the
   ISSUE asks for — a racy case's report embeds recent history for both
   fibers, and tracing never changes a verdict. *)

module Rec = Trace.Recorder
module E = Trace.Event

(* Every test leaves the recorder disabled so order cannot matter. *)
let with_recorder ?capacity f =
  Rec.enable ?capacity ();
  Fun.protect ~finally:Rec.disable f

(* --- ring buffer ------------------------------------------------------- *)

let ring_basics () =
  let r = Trace.Ring.create 3 in
  Alcotest.(check int) "capacity" 3 (Trace.Ring.capacity r);
  List.iter (Trace.Ring.add r) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "oldest first, newest kept" [ 3; 4; 5 ]
    (Trace.Ring.to_list r);
  Alcotest.(check int) "total counts overwritten" 5 (Trace.Ring.total r);
  Alcotest.(check int) "dropped" 2 (Trace.Ring.dropped r)

let ring_rejects_nonpositive () =
  List.iter
    (fun cap ->
      match Trace.Ring.create cap with
      | (_ : int Trace.Ring.t) -> Alcotest.failf "capacity %d accepted" cap
      | exception Invalid_argument _ -> ())
    [ 0; -1 ]

(* --- recorder ---------------------------------------------------------- *)

let disabled_is_inert () =
  Rec.disable ();
  Alcotest.(check bool) "off" false (Rec.on ());
  Alcotest.(check bool) "not enabled here" false (Rec.enabled_here ());
  (* Probes must be harmless no-ops, not crashes. *)
  Rec.instant ~cat:"t" "ignored";
  Rec.add_vt 1.0;
  Rec.new_epoch ();
  Alcotest.(check (float 0.)) "clock pinned at 0" 0. (Rec.now_us ());
  Alcotest.(check int) "no events" 0 (List.length (Rec.events ()));
  Alcotest.(check int) "nothing dropped" 0 (Rec.dropped ());
  Alcotest.(check int) "no recent history" 0
    (List.length (Rec.recent ~pid:0 ~k:4 ()))

let records_and_attributes () =
  with_recorder (fun () ->
      Alcotest.(check bool) "on" true (Rec.on ());
      Alcotest.(check int) "rank task" 2 (Rec.pid_of_task "rank2");
      Alcotest.(check int) "hybrid thread task" 3
        (Rec.pid_of_task "rank3:thread1");
      Alcotest.(check int) "non-rank task" (-1) (Rec.pid_of_task "main");
      Rec.task_resume ~task:"rank2";
      Alcotest.(check int) "pid follows the task" 2 (Rec.current_pid ());
      Rec.instant ~cat:"test" ~args:[ ("k", "v") ] "hello";
      Rec.set_track "stream1";
      Rec.instant ~cat:"test" "on-fiber";
      match Rec.events () with
      | [ resume; hello; fiber ] ->
          Alcotest.(check string) "sched resume first" "resume" resume.E.name;
          Alcotest.(check string) "cat" "test" hello.E.cat;
          Alcotest.(check int) "pid" 2 hello.E.pid;
          Alcotest.(check string) "track is the task" "rank2" hello.E.track;
          Alcotest.(check bool) "args kept" true
            (List.mem_assoc "k" hello.E.args);
          Alcotest.(check string) "set_track overrides" "stream1" fiber.E.track
      | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs))

let virtual_time_accrues () =
  with_recorder (fun () ->
      Rec.task_resume ~task:"rank0";
      Rec.add_vt 0.5;
      Rec.instant ~cat:"test" "after-charge";
      match List.rev (Rec.events ()) with
      | e :: _ ->
          Alcotest.(check (float 1e-6)) "vt in µs" 500_000. e.E.vt_us
      | [] -> Alcotest.fail "no events")

let epoch_scopes_recent () =
  with_recorder (fun () ->
      Rec.task_resume ~task:"rank0";
      Rec.instant ~cat:"test" "old-a";
      Rec.instant ~cat:"test" "old-b";
      Rec.new_epoch ();
      Rec.task_resume ~task:"rank0";
      Rec.instant ~cat:"test" "fresh";
      let recent = Rec.recent ~pid:0 ~k:10 () in
      Alcotest.(check bool) "previous epoch invisible to recent" false
        (List.exists (fun e -> e.E.name = "old-a" || e.E.name = "old-b") recent);
      Alcotest.(check bool) "current epoch visible" true
        (List.exists (fun e -> e.E.name = "fresh") recent);
      Alcotest.(check bool) "exported timeline keeps everything" true
        (List.exists (fun e -> e.E.name = "old-a") (Rec.events ()));
      (* k bounds the tail, oldest dropped first. *)
      match Rec.recent ~pid:0 ~k:1 () with
      | [ e ] -> Alcotest.(check string) "last event wins" "fresh" e.E.name
      | evs -> Alcotest.failf "k=1 returned %d events" (List.length evs))

let overflow_reports_dropped () =
  with_recorder ~capacity:2 (fun () ->
      Rec.task_resume ~task:"rank0";
      for i = 1 to 5 do
        Rec.instant ~cat:"test" (string_of_int i)
      done;
      Alcotest.(check int) "ring keeps capacity" 2
        (List.length (Rec.events ()));
      Alcotest.(check bool) "drops are counted" true (Rec.dropped () > 0);
      match Rec.recent ~pid:0 ~k:10 () with
      | [ a; b ] ->
          Alcotest.(check (list string)) "newest survive" [ "4"; "5" ]
            [ a.E.name; b.E.name ]
      | evs -> Alcotest.failf "expected 2 survivors, got %d" (List.length evs))

(* --- Chrome export ----------------------------------------------------- *)

let chrome_parses_back () =
  with_recorder (fun () ->
      Rec.task_resume ~task:"rank0";
      Rec.begin_span ~cat:"mpi" ~args:[ ("dst", "1") ] "MPI_Send";
      Rec.end_span ~cat:"mpi" "MPI_Send";
      Rec.complete ~cat:"cuda.op" ~start_us:10. ~dur_us:25. "kernel";
      Rec.task_resume ~task:"rank1";
      Rec.instant ~cat:"cusan" "annotate:recv";
      let s = Trace.Chrome.to_string (Rec.events ()) in
      let json =
        match Reporting.Mjson.of_string s with
        | Ok j -> j
        | Error msg -> Alcotest.failf "export does not parse: %s" msg
      in
      let open Reporting.Mjson in
      Alcotest.(check (option string)) "displayTimeUnit" (Some "ms")
        (Option.bind (member "displayTimeUnit" json) to_str);
      let evs =
        match Option.bind (member "traceEvents" json) to_list with
        | Some l -> l
        | None -> Alcotest.fail "no traceEvents array"
      in
      let phases =
        List.filter_map (fun e -> Option.bind (member "ph" e) to_str) evs
      in
      Alcotest.(check bool) "only Chrome phases" true
        (phases <> []
        && List.for_all (fun p -> List.mem p [ "B"; "E"; "i"; "X"; "M" ]) phases);
      List.iter
        (fun p ->
          Alcotest.(check bool) (p ^ " present") true (List.mem p phases))
        [ "B"; "E"; "i"; "X"; "M" ];
      (* Both ranks appear as named processes. *)
      let process_names =
        List.filter_map
          (fun e ->
            match Option.bind (member "name" e) to_str with
            | Some "process_name" ->
                Option.bind (member "args" e) (fun a ->
                    Option.bind (member "name" a) to_str)
            | _ -> None)
          evs
      in
      List.iter
        (fun n ->
          Alcotest.(check bool) (n ^ " metadata") true
            (List.mem n process_names))
        [ "rank 0"; "rank 1" ];
      (* The Complete event keeps its modelled duration. *)
      let durs =
        List.filter_map (fun e -> Option.bind (member "dur" e) to_float) evs
      in
      Alcotest.(check bool) "X event carries dur" true (List.mem 25. durs))

(* --- end to end through the harness ------------------------------------ *)

let find_case name =
  match
    List.find_opt
      (fun c -> c.Testsuite.Cases.name = name)
      (Testsuite.Cases.all ())
  with
  | Some c -> c
  | None -> Alcotest.failf "case %s not in the suite" name

let racy = "cuda-to-mpi/send_device_nosync_nok"
let clean = "cuda-to-mpi/send_device_devicesync"

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let race_report_embeds_history () =
  let case = find_case racy in
  with_recorder (fun () ->
      Rec.new_epoch ();
      let v = Testsuite.Runner.run_case case in
      Alcotest.(check bool) "race detected" true v.Testsuite.Runner.detected;
      match v.Testsuite.Runner.reports with
      | (_, r) :: _ ->
          let history = r.Tsan.Report.history in
          Alcotest.(check bool) "history for both fibers" true
            (List.length history >= 2);
          List.iter
            (fun (ctx, lines) ->
              Alcotest.(check bool) (ctx ^ " has events") true (lines <> []))
            history;
          (* The rendered report carries the context too. *)
          Alcotest.(check bool) "report text shows recent events" true
            (contains ~sub:"recent events" (Tsan.Report.to_string r))
      | [] -> Alcotest.fail "no race report")

let tracing_never_changes_verdicts () =
  List.iter
    (fun name ->
      let case = find_case name in
      Rec.disable ();
      let plain = Testsuite.Runner.run_case case in
      let traced =
        with_recorder (fun () -> Testsuite.Runner.run_case case)
      in
      Alcotest.(check bool)
        (name ^ ": detected identical")
        plain.Testsuite.Runner.detected traced.Testsuite.Runner.detected;
      Alcotest.(check bool)
        (name ^ ": pass identical")
        plain.Testsuite.Runner.pass traced.Testsuite.Runner.pass;
      Alcotest.(check int)
        (name ^ ": report count identical")
        (List.length plain.Testsuite.Runner.reports)
        (List.length traced.Testsuite.Runner.reports))
    [ racy; clean ]

let deadlock_embeds_history () =
  let app (env : Harness.Run.env) =
    if env.Harness.Run.mpi.Mpisim.Mpi.rank = 0 then begin
      let buf =
        Cudasim.Memory.host_malloc ~ty:Typeart.Typedb.F64 ~count:1 ()
      in
      Mpisim.Mpi.recv env.Harness.Run.mpi ~buf ~count:1
        ~dt:Mpisim.Datatype.double ~src:1 ~tag:0
    end
  in
  with_recorder (fun () ->
      let res =
        Harness.Run.run ~nranks:2 ~flavor:Harness.Flavor.Vanilla app
      in
      Alcotest.(check bool) "deadlocked" true
        (res.Harness.Run.deadlock <> None);
      match res.Harness.Run.history with
      | [] -> Alcotest.fail "no flight-recorder context for the deadlock"
      | history ->
          List.iter
            (fun ((ctx : string), lines) ->
              Alcotest.(check bool) (ctx ^ " non-empty") true (lines <> []))
            history)

let () =
  Alcotest.run "trace"
    [
      ( "ring",
        [
          Alcotest.test_case "basics" `Quick ring_basics;
          Alcotest.test_case "rejects cap<=0" `Quick ring_rejects_nonpositive;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "disabled is inert" `Quick disabled_is_inert;
          Alcotest.test_case "records and attributes" `Quick
            records_and_attributes;
          Alcotest.test_case "virtual time accrues" `Quick virtual_time_accrues;
          Alcotest.test_case "epoch scopes recent" `Quick epoch_scopes_recent;
          Alcotest.test_case "overflow reports dropped" `Quick
            overflow_reports_dropped;
        ] );
      ( "chrome",
        [ Alcotest.test_case "parses back via Mjson" `Quick chrome_parses_back ] );
      ( "end-to-end",
        [
          Alcotest.test_case "race report embeds history" `Quick
            race_report_embeds_history;
          Alcotest.test_case "tracing never changes verdicts" `Quick
            tracing_never_changes_verdicts;
          Alcotest.test_case "deadlock embeds history" `Quick
            deadlock_embeds_history;
        ] );
    ]
