(* Tests for the FastTrack happens-before detector, its vector clocks,
   epochs, shadow memory, and annotation API. *)

open Tsan

let base = 1 lsl 36 (* a valid region base in the simulated layout *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let detector ?granule ?suppressions () =
  let d = Detector.create ?granule ?suppressions () in
  Detector.on_alloc d ~base ~size:4096;
  d

(* --- vector clocks ---------------------------------------------------- *)

let vclock_basics () =
  let a = Vclock.create () in
  Alcotest.(check int) "unset is 0" 0 (Vclock.get a 5);
  Vclock.set a 2 7;
  Alcotest.(check int) "set/get" 7 (Vclock.get a 2);
  Vclock.incr a 2;
  Alcotest.(check int) "incr" 8 (Vclock.get a 2);
  let b = Vclock.create () in
  Vclock.set b 0 3;
  Vclock.join a b;
  Alcotest.(check int) "join keeps max" 8 (Vclock.get a 2);
  Alcotest.(check int) "join imports" 3 (Vclock.get a 0);
  Alcotest.(check bool) "b <= a" true (Vclock.leq b a);
  Alcotest.(check bool) "a </= b" false (Vclock.leq a b)

let vclock_find_gt () =
  let a = Vclock.create () and b = Vclock.create () in
  Vclock.set a 3 5;
  Vclock.set b 3 5;
  Alcotest.(check bool) "none when leq" true (Vclock.find_gt a b = None);
  Vclock.set a 3 6;
  Alcotest.(check bool) "witness" true (Vclock.find_gt a b = Some (3, 6))

let epoch_pack () =
  let e = Epoch.pack ~tid:17 ~clock:123456 in
  Alcotest.(check int) "tid" 17 (Epoch.tid e);
  Alcotest.(check int) "clock" 123456 (Epoch.clock e);
  Alcotest.(check bool) "none" true (Epoch.is_none Epoch.none)

(* qcheck: join is the least upper bound; leq is a partial order. *)
let clock_gen =
  QCheck.Gen.(
    list_size (1 -- 6) (0 -- 50) >|= fun l ->
    let vc = Vclock.create () in
    List.iteri (fun i x -> Vclock.set vc i x) l;
    vc)

let arb_clock = QCheck.make ~print:(Fmt.to_to_string Vclock.pp) clock_gen

let prop_join_ub =
  QCheck.Test.make ~name:"join is upper bound" ~count:300
    (QCheck.pair arb_clock arb_clock) (fun (a, b) ->
      let j = Vclock.copy a in
      Vclock.join j b;
      Vclock.leq a j && Vclock.leq b j)

let prop_join_least =
  QCheck.Test.make ~name:"join is least upper bound" ~count:300
    (QCheck.triple arb_clock arb_clock arb_clock) (fun (a, b, c) ->
      let j = Vclock.copy a in
      Vclock.join j b;
      (* any common upper bound c dominates the join *)
      QCheck.assume (Vclock.leq a c && Vclock.leq b c);
      Vclock.leq j c)

let prop_leq_partial_order =
  QCheck.Test.make ~name:"leq reflexive+transitive" ~count:300
    (QCheck.triple arb_clock arb_clock arb_clock) (fun (a, b, c) ->
      Vclock.leq a a
      && (not (Vclock.leq a b && Vclock.leq b c) || Vclock.leq a c))

let prop_join_commutative =
  QCheck.Test.make ~name:"join commutative" ~count:300
    (QCheck.pair arb_clock arb_clock) (fun (a, b) ->
      let ab = Vclock.copy a in
      Vclock.join ab b;
      let ba = Vclock.copy b in
      Vclock.join ba a;
      Vclock.equal ab ba)

(* --- basic race scenarios --------------------------------------------- *)

let no_race_same_fiber () =
  let d = detector () in
  Detector.write_range d ~addr:base ~len:64;
  Detector.read_range d ~addr:base ~len:64;
  Detector.write_range d ~addr:base ~len:64;
  Alcotest.(check int) "no race" 0 (Detector.races_total d)

let race_two_fibers_ww () =
  let d = detector () in
  let f = Detector.fiber_create d "stream0" in
  Detector.write_range d ~addr:base ~len:8;
  Detector.switch_to_fiber d f;
  Detector.write_range d ~addr:base ~len:8;
  Alcotest.(check bool) "race found" true (Detector.races_total d > 0);
  Alcotest.(check int) "one deduped report" 1 (Detector.race_count d)

let race_write_then_read () =
  let d = detector () in
  let f = Detector.fiber_create d "stream0" in
  Detector.switch_to_fiber d f;
  Detector.write_range d ~addr:base ~len:8;
  Detector.switch_to_fiber d (Detector.main_fiber d);
  Detector.read_range d ~addr:base ~len:8;
  match Detector.races d with
  | [ r ] ->
      Alcotest.(check string) "current fiber" "main" r.Report.current.Report.fiber;
      Alcotest.(check string) "prev fiber" "stream0" r.Report.previous.Report.fiber;
      Alcotest.(check bool) "kinds" true
        (r.Report.current.Report.kind = `Read
        && r.Report.previous.Report.kind = `Write)
  | rs -> Alcotest.failf "expected 1 report, got %d" (List.length rs)

let race_read_then_write () =
  let d = detector () in
  let f = Detector.fiber_create d "mpi_req" in
  Detector.switch_to_fiber d f;
  Detector.read_range d ~addr:base ~len:8;
  Detector.switch_to_fiber d (Detector.main_fiber d);
  Detector.write_range d ~addr:base ~len:8;
  Alcotest.(check bool) "race" true (Detector.races_total d > 0)

let no_race_read_read () =
  let d = detector () in
  let f = Detector.fiber_create d "f" in
  Detector.read_range d ~addr:base ~len:32;
  Detector.switch_to_fiber d f;
  Detector.read_range d ~addr:base ~len:32;
  Alcotest.(check int) "reads don't race" 0 (Detector.races_total d)

let sync_prevents_race () =
  let d = detector () in
  let f = Detector.fiber_create d "stream0" in
  let key = 0xABC in
  Detector.switch_to_fiber d f;
  Detector.write_range d ~addr:base ~len:8;
  Detector.happens_before d key;
  Detector.switch_to_fiber d (Detector.main_fiber d);
  Detector.happens_after d key;
  Detector.read_range d ~addr:base ~len:8;
  Detector.write_range d ~addr:base ~len:8;
  Alcotest.(check int) "synced" 0 (Detector.races_total d)

let sync_wrong_key_still_races () =
  let d = detector () in
  let f = Detector.fiber_create d "stream0" in
  Detector.switch_to_fiber d f;
  Detector.write_range d ~addr:base ~len:8;
  Detector.happens_before d 1;
  Detector.switch_to_fiber d (Detector.main_fiber d);
  Detector.happens_after d 2;
  Detector.write_range d ~addr:base ~len:8;
  Alcotest.(check bool) "wrong key" true (Detector.races_total d > 0)

let sync_transitive () =
  (* a -> b -> c by two release/acquire pairs: no race between a and c. *)
  let d = detector () in
  let fb = Detector.fiber_create d "b" and fc = Detector.fiber_create d "c" in
  Detector.write_range d ~addr:base ~len:8;
  Detector.happens_before d 10;
  Detector.switch_to_fiber d fb;
  Detector.happens_after d 10;
  Detector.happens_before d 20;
  Detector.switch_to_fiber d fc;
  Detector.happens_after d 20;
  Detector.write_range d ~addr:base ~len:8;
  Alcotest.(check int) "transitive HB" 0 (Detector.races_total d)

let release_then_continue_races () =
  (* Accesses *after* the release are not covered by it. *)
  let d = detector () in
  let f = Detector.fiber_create d "w" in
  Detector.switch_to_fiber d f;
  Detector.happens_before d 5;
  Detector.write_range d ~addr:base ~len:8;
  Detector.switch_to_fiber d (Detector.main_fiber d);
  Detector.happens_after d 5;
  Detector.write_range d ~addr:base ~len:8;
  Alcotest.(check bool) "post-release access races" true
    (Detector.races_total d > 0)

let ha_without_hb_noop () =
  let d = detector () in
  Detector.happens_after d 999;
  Alcotest.(check int) "no crash, no race" 0 (Detector.races_total d)

let shared_read_promotion () =
  (* Reads from 3 fibers, then an unsynchronized write: race against the
     promoted read vector clock. *)
  let d = detector () in
  let f1 = Detector.fiber_create d "r1" and f2 = Detector.fiber_create d "r2" in
  Detector.read_range d ~addr:base ~len:8;
  Detector.switch_to_fiber d f1;
  Detector.read_range d ~addr:base ~len:8;
  Detector.switch_to_fiber d f2;
  Detector.read_range d ~addr:base ~len:8;
  Alcotest.(check int) "reads alone fine" 0 (Detector.races_total d);
  Detector.write_range d ~addr:base ~len:8;
  Alcotest.(check bool) "write races promoted reads" true
    (Detector.races_total d > 0)

let shared_read_then_synced_write () =
  let d = detector () in
  let f1 = Detector.fiber_create d "r1" and f2 = Detector.fiber_create d "r2" in
  Detector.switch_to_fiber d f1;
  Detector.read_range d ~addr:base ~len:8;
  Detector.happens_before d 1;
  Detector.switch_to_fiber d f2;
  Detector.read_range d ~addr:base ~len:8;
  Detector.happens_before d 2;
  Detector.switch_to_fiber d (Detector.main_fiber d);
  Detector.happens_after d 1;
  Detector.happens_after d 2;
  Detector.write_range d ~addr:base ~len:8;
  Alcotest.(check int) "write after all reads synced" 0 (Detector.races_total d)

(* --- ranges and granularity ------------------------------------------ *)

let disjoint_ranges_no_race () =
  let d = detector () in
  let f = Detector.fiber_create d "f" in
  Detector.write_range d ~addr:base ~len:64;
  Detector.switch_to_fiber d f;
  Detector.write_range d ~addr:(base + 64) ~len:64;
  Alcotest.(check int) "disjoint" 0 (Detector.races_total d)

let overlap_one_cell_races () =
  let d = detector () in
  let f = Detector.fiber_create d "f" in
  Detector.write_range d ~addr:base ~len:72;
  Detector.switch_to_fiber d f;
  Detector.write_range d ~addr:(base + 64) ~len:64;
  Alcotest.(check bool) "overlap" true (Detector.races_total d > 0)

let granule_precision () =
  (* With an 8-byte granule, two 4-byte fields in one granule falsely
     collide; with a 4-byte granule they do not. This is the precision
     trade-off the ablation bench quantifies. *)
  let collide granule =
    let d = detector ~granule () in
    let f = Detector.fiber_create d "f" in
    Detector.write_range d ~addr:base ~len:4;
    Detector.switch_to_fiber d f;
    Detector.write_range d ~addr:(base + 4) ~len:4;
    Detector.races_total d > 0
  in
  Alcotest.(check bool) "8B granule collides" true (collide 8);
  Alcotest.(check bool) "4B granule precise" false (collide 4)

let zero_len_noop () =
  let d = detector () in
  Detector.write_range d ~addr:base ~len:0;
  Detector.read_range d ~addr:base ~len:0;
  Alcotest.(check int) "no counters" 0 (Detector.counters d).Counters.write_ranges

let unknown_region_is_mapped () =
  let d = Detector.create () in
  (* No on_alloc: the detector shadows the location on demand. *)
  Detector.write_range d ~addr:(42 lsl 36) ~len:8;
  let f = Detector.fiber_create d "f" in
  Detector.switch_to_fiber d f;
  Detector.write_range d ~addr:(42 lsl 36) ~len:8;
  Alcotest.(check bool) "still detects" true (Detector.races_total d > 0)

(* Regression: two DISTANT unshadowed addresses falling into the same
   2^36 slot must not alias. The old find_or_map mapped the on-demand
   region at the slot base, so any later wild access in the slot hit
   cell 0 of that region and conflated unrelated locations into phantom
   races. *)
let wild_addresses_do_not_alias () =
  let d = Detector.create () in
  let a = (42 lsl 36) + 0x1000 and b = (42 lsl 36) + 0x9000 in
  Detector.write_range d ~addr:a ~len:8;
  let f = Detector.fiber_create d "f" in
  Detector.switch_to_fiber d f;
  Detector.write_range d ~addr:b ~len:8;
  Alcotest.(check int) "distinct addresses never race" 0
    (Detector.races_total d);
  (* The same wild address from two fibers must still race. *)
  Detector.switch_to_fiber d (Detector.main_fiber d);
  Detector.write_range d ~addr:b ~len:8;
  Alcotest.(check bool) "same address still races" true
    (Detector.races_total d > 0)

let free_clears_shadow () =
  let d = detector () in
  let f = Detector.fiber_create d "f" in
  Detector.write_range d ~addr:base ~len:8;
  Detector.on_free d ~base;
  Detector.on_alloc d ~base ~size:4096;
  Detector.switch_to_fiber d f;
  Detector.write_range d ~addr:base ~len:8;
  Alcotest.(check int) "fresh shadow after free" 0 (Detector.races_total d)

(* --- reporting, contexts, suppression -------------------------------- *)

let dedup_many_cells () =
  let d = detector () in
  let f = Detector.fiber_create d "f" in
  Detector.write_range d ~addr:base ~len:1024;
  Detector.switch_to_fiber d f;
  Detector.write_range d ~addr:base ~len:1024;
  Alcotest.(check bool) "many raw events" true (Detector.races_total d > 10);
  Alcotest.(check int) "one report" 1 (Detector.race_count d)

let contexts_in_reports () =
  let d = detector () in
  let f = Detector.fiber_create d "stream" in
  Detector.switch_to_fiber d f;
  Detector.with_context d "kernel:jacobi" (fun () ->
      Detector.write_range d ~addr:base ~len:8);
  Detector.switch_to_fiber d (Detector.main_fiber d);
  Detector.with_context d "MPI_Send" (fun () ->
      Detector.read_range d ~addr:base ~len:8);
  match Detector.races d with
  | [ r ] ->
      Alcotest.(check string) "cur origin" "MPI_Send" r.Report.current.Report.origin;
      Alcotest.(check string) "prev origin" "kernel:jacobi"
        r.Report.previous.Report.origin
  | _ -> Alcotest.fail "expected one report"

let suppression () =
  let d = detector ~suppressions:[ "libfabric" ] () in
  let f = Detector.fiber_create d "f" in
  Detector.with_context d "libfabric_progress" (fun () ->
      Detector.write_range d ~addr:base ~len:8);
  Detector.switch_to_fiber d f;
  Detector.write_range d ~addr:base ~len:8;
  Alcotest.(check int) "report suppressed" 0 (Detector.race_count d);
  Alcotest.(check int) "counted" 1 (Detector.suppressed_count d)

let suppressions_file_format () =
  let patterns =
    Tsan.Suppress.parse
      "# TSan suppressions for cluster X\n\
       race:libfabric\n\
       race:ucx_progress\n\
       thread:helper_thread\n\
       \n\
       malformed line\n\
       race:\n"
  in
  Alcotest.(check (list string)) "race rules only"
    [ "libfabric"; "ucx_progress" ] patterns

let counters_track () =
  let d = detector () in
  let f = Detector.fiber_create d "f" in
  Detector.switch_to_fiber d f;
  Detector.switch_to_fiber d (Detector.main_fiber d);
  Detector.happens_before d 1;
  Detector.happens_after d 1;
  Detector.read_range d ~addr:base ~len:100;
  Detector.write_range d ~addr:base ~len:200;
  let c = Detector.counters d in
  Alcotest.(check int) "switches" 2 c.Counters.fiber_switches;
  Alcotest.(check int) "hb" 1 c.Counters.happens_before;
  Alcotest.(check int) "ha" 1 c.Counters.happens_after;
  Alcotest.(check int) "read bytes" 100 c.Counters.read_bytes;
  Alcotest.(check int) "write bytes" 200 c.Counters.write_bytes

let shadow_accounting () =
  (* Shadow materializes lazily, on first touch — like real TSan's
     demand-faulted shadow pages. Pages whose cells stay identical are
     priced as uniform summaries, so a full-extent write (the CuSan
     whole-allocation case) costs a summary per page, not 4x the data;
     only the partially-written page pays for a per-cell chunk. *)
  let d = Detector.create ~granule:8 () in
  Alcotest.(check int) "empty" 0 (Detector.shadow_bytes d);
  Detector.on_alloc d ~base ~size:(1 lsl 20);
  Alcotest.(check int) "mapping alone costs nothing" 0 (Detector.shadow_bytes d);
  Detector.write_range d ~addr:base ~len:8;
  let small = Detector.shadow_bytes d in
  Alcotest.(check bool) "one page materialized" true (small > 0 && small <= 8192);
  Detector.write_range d ~addr:base ~len:(1 lsl 20);
  let full = Detector.shadow_bytes d in
  Alcotest.(check bool) "full range stays summary-priced" true
    (full > 0 && full <= (1 lsl 20) / 8);
  Alcotest.(check bool) "peak counted the materialized page" true
    (Detector.shadow_bytes_peak d >= Shadow.page_bytes);
  Detector.on_free d ~base;
  Alcotest.(check int) "released" 0 (Detector.shadow_bytes d);
  Alcotest.(check bool) "peak survives free" true
    (Detector.shadow_bytes_peak d >= full)

(* Regression: shadow_bytes_peak must track page-granular
   materialization exactly — a chunk per diverged page, a summary per
   uniform page, the peak frozen at the worst point. *)
let shadow_page_materialization () =
  let d = Detector.create ~granule:8 () in
  let size = 64 * 1024 in
  Detector.on_alloc d ~base ~size;
  let npages = size / 8 / Shadow.cells_per_page in
  let page_app_bytes = Shadow.cells_per_page * 8 in
  (* Partial writes in three distinct pages materialize three chunks. *)
  List.iter
    (fun p ->
      Detector.write_range d ~addr:(base + (p * page_app_bytes)) ~len:8)
    [ 0; 5; 9 ];
  Alcotest.(check int) "three materialized pages" (3 * Shadow.page_bytes)
    (Detector.shadow_bytes d);
  (* A full-extent write leaves every cell identical: the chunks
     collapse back to summaries and the untouched pages only ever get
     summaries — one per page, nothing else. *)
  Detector.write_range d ~addr:base ~len:size;
  Alcotest.(check int) "all pages uniform" (npages * Shadow.summary_bytes)
    (Detector.shadow_bytes d);
  Alcotest.(check int) "peak was the three chunks" (3 * Shadow.page_bytes)
    (Detector.shadow_bytes_peak d)

(* Regression: the per-fiber last-hit region cache must be invalidated
   by free/realloc. A stale cache would route main's last write into the
   old region's shadow and miss the race against the realloc writer. *)
let region_cache_invalidation () =
  let d = detector () in
  let f = Detector.fiber_create d "f" in
  Detector.write_range d ~addr:base ~len:8 (* main caches the region *);
  Detector.on_free d ~base;
  Detector.on_alloc d ~base ~size:4096;
  Detector.switch_to_fiber d f;
  Detector.write_range d ~addr:base ~len:8;
  Detector.switch_to_fiber d (Detector.main_fiber d);
  Detector.write_range d ~addr:base ~len:8;
  Alcotest.(check bool) "race against realloc writer found" true
    (Detector.races_total d > 0)

let report_pp_smoke () =
  let d = detector () in
  let f = Detector.fiber_create d "stream0" in
  Detector.write_range d ~addr:base ~len:8;
  Detector.switch_to_fiber d f;
  Detector.write_range d ~addr:base ~len:8;
  let s = Fmt.str "%a" Detector.pp_races d in
  Alcotest.(check bool) "mentions WARNING" true
    (contains s "WARNING: data race")

(* --- FastTrack vs. reference detector on random traces ---------------- *)

(* Reference: record every access with a full vector-clock snapshot and
   compare all conflicting pairs. Slow but obviously correct. *)
module Ref_detector = struct
  type access = { fiber : int; vc : Vclock.t; kind : [ `Read | `Write ] }

  type t = {
    mutable clocks : Vclock.t array;
    sync : (int, Vclock.t) Hashtbl.t;
    accesses : (int, access list ref) Hashtbl.t; (* per cell *)
    mutable cur : int;
    mutable race : bool;
  }

  let create n =
    {
      clocks =
        Array.init n (fun i ->
            let vc = Vclock.create () in
            Vclock.set vc i 1;
            vc);
      sync = Hashtbl.create 8;
      accesses = Hashtbl.create 8;
      cur = 0;
      race = false;
    }

  let switch t f = t.cur <- f

  let hb t key =
    let vc =
      match Hashtbl.find_opt t.sync key with
      | Some vc -> vc
      | None ->
          let vc = Vclock.create () in
          Hashtbl.replace t.sync key vc;
          vc
    in
    Vclock.join vc t.clocks.(t.cur);
    Vclock.incr t.clocks.(t.cur) t.cur

  let ha t key =
    match Hashtbl.find_opt t.sync key with
    | None -> ()
    | Some vc -> Vclock.join t.clocks.(t.cur) vc

  let access t cell kind =
    let l =
      match Hashtbl.find_opt t.accesses cell with
      | Some l -> l
      | None ->
          let l = ref [] in
          Hashtbl.replace t.accesses cell l;
          l
    in
    let me =
      { fiber = t.cur; vc = Vclock.copy t.clocks.(t.cur); kind }
    in
    List.iter
      (fun prev ->
        let conflicting = prev.kind = `Write || kind = `Write in
        (* prev happened-before me iff prev.vc.(prev.fiber) <= my knowledge *)
        let ordered =
          Vclock.get prev.vc prev.fiber <= Vclock.get me.vc prev.fiber
        in
        if conflicting && not ordered then t.race <- true)
      !l;
    l := me :: !l
end

type op =
  | Switch of int
  | Hb of int
  | Ha of int
  | Read of int
  | Write of int

let op_gen nf ncells nkeys =
  QCheck.Gen.(
    frequency
      [
        (2, map (fun f -> Switch f) (0 -- (nf - 1)));
        (2, map (fun k -> Hb k) (0 -- (nkeys - 1)));
        (2, map (fun k -> Ha k) (0 -- (nkeys - 1)));
        (3, map (fun c -> Read c) (0 -- (ncells - 1)));
        (3, map (fun c -> Write c) (0 -- (ncells - 1)));
      ])

let show_op = function
  | Switch f -> Printf.sprintf "switch %d" f
  | Hb k -> Printf.sprintf "hb %d" k
  | Ha k -> Printf.sprintf "ha %d" k
  | Read c -> Printf.sprintf "read %d" c
  | Write c -> Printf.sprintf "write %d" c

let prop_fasttrack_vs_reference =
  let nf = 3 and ncells = 4 and nkeys = 3 in
  QCheck.Test.make ~name:"fasttrack agrees with reference on first race"
    ~count:500
    (QCheck.make
       ~print:(fun l -> String.concat "; " (List.map show_op l))
       QCheck.Gen.(list_size (0 -- 40) (op_gen nf ncells nkeys)))
    (fun ops ->
      (* FastTrack side *)
      let d = Detector.create ~granule:8 () in
      Detector.on_alloc d ~base ~size:(ncells * 8);
      let fibers =
        Array.init nf (fun i ->
            if i = 0 then Detector.main_fiber d
            else Detector.fiber_create d (Printf.sprintf "f%d" i))
      in
      (* Reference side *)
      let r = Ref_detector.create nf in
      let ft_raced = ref false in
      List.iter
        (fun op ->
          (match op with
          | Switch f ->
              Detector.switch_to_fiber d fibers.(f);
              Ref_detector.switch r f
          | Hb k ->
              Detector.happens_before d k;
              Ref_detector.hb r k
          | Ha k ->
              Detector.happens_after d k;
              Ref_detector.ha r k
          | Read c ->
              Detector.read_range d ~addr:(base + (c * 8)) ~len:8;
              Ref_detector.access r c `Read
          | Write c ->
              Detector.write_range d ~addr:(base + (c * 8)) ~len:8;
              Ref_detector.access r c `Write);
          if Detector.races_total d > 0 then ft_raced := true)
        ops;
      (* FastTrack forgets history on write, so it can miss races the
         reference sees *after the first one*; but whether ANY race
         exists must agree. *)
      !ft_raced = r.Ref_detector.race)

(* --- flat-arena shadow vs. the per-cell oracle ------------------------ *)

(* A faithful port of the previous per-granule implementation: one
   FastTrack check per shadow cell over eager per-region arrays. The
   flat-arena shadow must match it verdict for verdict — not just
   "was there a race" but races_total and the exact report text. *)
module Oracle = struct
  let promoted = -1

  type oregion = {
    obase : int;
    osize : int;
    ogran : int;
    owild : bool;
    w_epoch : int array;
    r_epoch : int array;
    w_origin : string array;
    r_origin : string array;
    read_vcs : (int, Vclock.t) Hashtbl.t;
  }

  type ofiber = {
    otid : int;
    oname : string;
    ovc : Vclock.t;
    mutable oepoch : int;
    mutable octx : string list;
  }

  type t = {
    mutable fibers : ofiber list;
    mutable cur : ofiber;
    sync : (int, Vclock.t) Hashtbl.t;
    regions : (int, oregion list) Hashtbl.t;
    granule : int;
    mutable reports : Report.t list;
    mutable total : int;
    seen :
      (string * [ `Read | `Write ] * string * [ `Read | `Write ], unit)
      Hashtbl.t;
    limit : int;
    mutable next_tid : int;
  }

  let refresh f =
    f.oepoch <- Epoch.pack ~tid:f.otid ~clock:(Vclock.get f.ovc f.otid)

  let make_fiber t name =
    let tid = t.next_tid in
    t.next_tid <- t.next_tid + 1;
    let vc = Vclock.create () in
    Vclock.set vc tid 1;
    let f = { otid = tid; oname = name; ovc = vc; oepoch = 0; octx = [] } in
    refresh f;
    t.fibers <- f :: t.fibers;
    f

  let create () =
    let t =
      {
        fibers = [];
        cur = Obj.magic 0;
        sync = Hashtbl.create 16;
        regions = Hashtbl.create 16;
        granule = 8;
        reports = [];
        total = 0;
        seen = Hashtbl.create 16;
        limit = 64;
        next_tid = 0;
      }
    in
    t.cur <- make_fiber t "main";
    t

  let switch t f = t.cur <- f

  let hb t key =
    let vc =
      match Hashtbl.find_opt t.sync key with
      | Some vc -> vc
      | None ->
          let vc = Vclock.create () in
          Hashtbl.replace t.sync key vc;
          vc
    in
    Vclock.join vc t.cur.ovc;
    Vclock.incr t.cur.ovc t.cur.otid;
    refresh t.cur

  let ha t key =
    match Hashtbl.find_opt t.sync key with
    | None -> ()
    | Some vc -> Vclock.join t.cur.ovc vc

  let push t label = t.cur.octx <- label :: t.cur.octx
  let pop t = match t.cur.octx with [] -> () | _ :: rest -> t.cur.octx <- rest
  let cur_origin t = match t.cur.octx with [] -> t.cur.oname | o :: _ -> o

  let map ?(wild = false) t ~base ~size =
    let n = max 1 ((size + t.granule - 1) / t.granule) in
    let r =
      {
        obase = base;
        osize = size;
        ogran = t.granule;
        owild = wild;
        w_epoch = Array.make n Epoch.none;
        r_epoch = Array.make n Epoch.none;
        w_origin = Array.make n "?";
        r_origin = Array.make n "?";
        read_vcs = Hashtbl.create 4;
      }
    in
    let slot = base lsr 36 in
    let others =
      match Hashtbl.find_opt t.regions slot with
      | None -> []
      | Some rs -> List.filter (fun r -> r.obase <> base) rs
    in
    Hashtbl.replace t.regions slot (r :: others);
    r

  let unmap t ~base =
    let slot = base lsr 36 in
    match Hashtbl.find_opt t.regions slot with
    | None -> ()
    | Some rs -> (
        match List.filter (fun r -> r.obase <> base) rs with
        | [] -> Hashtbl.remove t.regions slot
        | rs' -> Hashtbl.replace t.regions slot rs')

  let covers r addr =
    if r.owild then addr >= r.obase && addr < r.obase + max r.osize r.ogran
    else addr >= r.obase

  let find_or_map t addr =
    let found =
      match Hashtbl.find_opt t.regions (addr lsr 36) with
      | None -> None
      | Some rs -> List.find_opt (fun r -> covers r addr) rs
    in
    match found with
    | Some r -> r
    | None -> map ~wild:true t ~base:(addr - (addr mod t.granule)) ~size:t.granule

  let cell_range r ~addr ~len =
    let lo = (addr - r.obase) / r.ogran in
    let hi = (addr + len - 1 - r.obase) / r.ogran in
    let last = Array.length r.w_epoch - 1 in
    (max 0 (min lo last), max 0 (min hi last))

  let report t ~addr ~cur_kind ~prev_epoch ~prev_origin ~prev_kind =
    t.total <- t.total + 1;
    let prev_fiber =
      match
        List.find_opt (fun f -> f.otid = Epoch.tid prev_epoch) t.fibers
      with
      | Some f -> f.oname
      | None -> Fmt.str "fiber#%d" (Epoch.tid prev_epoch)
    in
    let r =
      {
        Report.addr;
        bytes = t.granule;
        current =
          { Report.fiber = t.cur.oname; kind = cur_kind; origin = cur_origin t };
        previous =
          { Report.fiber = prev_fiber; kind = prev_kind; origin = prev_origin };
        location = Report.symbolize addr;
        history = [];
      }
    in
    let key = Report.dedup_key r in
    if not (Hashtbl.mem t.seen key) then begin
      Hashtbl.replace t.seen key ();
      if List.length t.reports < t.limit then t.reports <- r :: t.reports
    end

  let check_write_hb t r i ~cur_kind =
    let we = r.w_epoch.(i) in
    if not (Epoch.is_none we || Epoch.hb we t.cur.ovc) then
      report t
        ~addr:(r.obase + (i * r.ogran))
        ~cur_kind ~prev_epoch:we ~prev_origin:r.w_origin.(i) ~prev_kind:`Write

  let write_cell t r i ~origin =
    let cur = t.cur in
    let e = cur.oepoch in
    if r.w_epoch.(i) <> e then begin
      check_write_hb t r i ~cur_kind:`Write;
      let re = r.r_epoch.(i) in
      if re = promoted then begin
        (match Hashtbl.find_opt r.read_vcs i with
        | Some rvc -> (
            match Vclock.find_gt rvc cur.ovc with
            | Some (rtid, rclk) ->
                report t
                  ~addr:(r.obase + (i * r.ogran))
                  ~cur_kind:`Write
                  ~prev_epoch:(Epoch.pack ~tid:rtid ~clock:rclk)
                  ~prev_origin:r.r_origin.(i) ~prev_kind:`Read
            | None -> ())
        | None -> ());
        Hashtbl.remove r.read_vcs i
      end
      else if not (Epoch.is_none re || Epoch.hb re cur.ovc) then
        report t
          ~addr:(r.obase + (i * r.ogran))
          ~cur_kind:`Write ~prev_epoch:re ~prev_origin:r.r_origin.(i)
          ~prev_kind:`Read;
      r.w_epoch.(i) <- e;
      r.w_origin.(i) <- origin;
      r.r_epoch.(i) <- Epoch.none
    end

  let read_cell t r i ~origin =
    let cur = t.cur in
    let e = cur.oepoch in
    let re = r.r_epoch.(i) in
    if re <> e then begin
      check_write_hb t r i ~cur_kind:`Read;
      if re = promoted then begin
        (match Hashtbl.find_opt r.read_vcs i with
        | Some rvc -> Vclock.set rvc cur.otid (Vclock.get cur.ovc cur.otid)
        | None -> ());
        r.r_origin.(i) <- origin
      end
      else if Epoch.is_none re || Epoch.hb re cur.ovc then begin
        r.r_epoch.(i) <- e;
        r.r_origin.(i) <- origin
      end
      else begin
        let rvc = Vclock.create () in
        Vclock.set rvc (Epoch.tid re) (Epoch.clock re);
        Vclock.set rvc cur.otid (Vclock.get cur.ovc cur.otid);
        Hashtbl.replace r.read_vcs i rvc;
        r.r_epoch.(i) <- promoted;
        r.r_origin.(i) <- origin
      end
    end

  let write_range t ~addr ~len =
    if len > 0 then begin
      let r = find_or_map t addr in
      let lo, hi = cell_range r ~addr ~len in
      let origin = cur_origin t in
      for i = lo to hi do
        write_cell t r i ~origin
      done
    end

  let read_range t ~addr ~len =
    if len > 0 then begin
      let r = find_or_map t addr in
      let lo, hi = cell_range r ~addr ~len in
      let origin = cur_origin t in
      for i = lo to hi do
        read_cell t r i ~origin
      done
    end

  let races t = List.rev t.reports
end

(* Random traces over the full annotation surface: multi-page ranges,
   overflowing accesses (clamp path), RW kernel arguments, fiber
   switches, contexts, alloc/free/realloc reuse and wild (never
   allocated) addresses. *)
type xop =
  | XSwitch of int
  | XHb of int
  | XHa of int
  | XRead of int * int * int (* slot, offset, length *)
  | XWrite of int * int * int
  | XRw of int * int * int
  | XAlloc of int
  | XFree of int
  | XWildW of int
  | XPush of int
  | XPop

let xbase s = (s + 1) lsl 36
let xsize = 4096 (* 512 cells at granule 8 = 4 shadow pages *)

let xop_gen =
  QCheck.Gen.(
    let slot = 0 -- 1 in
    (* offsets inside the region, near page boundaries, and past the
       end (the clamp path); lengths spanning none, part of a page,
       and multiple pages *)
    let off = frequency [ (4, 0 -- 192); (2, 900 -- 1300); (1, 4000 -- 4500) ] in
    let len = frequency [ (1, return 0); (4, 1 -- 96); (2, 700 -- 2500) ] in
    frequency
      [
        (2, map (fun f -> XSwitch f) (0 -- 2));
        (2, map (fun k -> XHb k) (0 -- 2));
        (2, map (fun k -> XHa k) (0 -- 2));
        (3, map3 (fun s o l -> XRead (s, o, l)) slot off len);
        (3, map3 (fun s o l -> XWrite (s, o, l)) slot off len);
        (2, map3 (fun s o l -> XRw (s, o, l)) slot off len);
        (1, map (fun s -> XAlloc s) slot);
        (1, map (fun s -> XFree s) slot);
        (1, map (fun o -> XWildW o) (0 -- 15));
        (1, map (fun c -> XPush c) (0 -- 2));
        (1, return XPop);
      ])

let show_xop = function
  | XSwitch f -> Printf.sprintf "switch %d" f
  | XHb k -> Printf.sprintf "hb %d" k
  | XHa k -> Printf.sprintf "ha %d" k
  | XRead (s, o, l) -> Printf.sprintf "read %d+%d#%d" s o l
  | XWrite (s, o, l) -> Printf.sprintf "write %d+%d#%d" s o l
  | XRw (s, o, l) -> Printf.sprintf "rw %d+%d#%d" s o l
  | XAlloc s -> Printf.sprintf "alloc %d" s
  | XFree s -> Printf.sprintf "free %d" s
  | XWildW o -> Printf.sprintf "wildw %d" o
  | XPush c -> Printf.sprintf "push %d" c
  | XPop -> "pop"

let prop_flat_arena_matches_oracle =
  QCheck.Test.make ~name:"flat-arena shadow matches per-cell oracle" ~count:300
    (QCheck.make
       ~print:(fun l -> String.concat "; " (List.map show_xop l))
       QCheck.Gen.(list_size (0 -- 60) xop_gen))
    (fun ops ->
      let d = Detector.create ~granule:8 () in
      let dfibers =
        [|
          Detector.main_fiber d;
          Detector.fiber_create d "f1";
          Detector.fiber_create d "f2";
        |]
      in
      let o = Oracle.create () in
      let ofibers =
        [| o.Oracle.cur; Oracle.make_fiber o "f1"; Oracle.make_fiber o "f2" |]
      in
      List.iter
        (fun op ->
          match op with
          | XSwitch f ->
              Detector.switch_to_fiber d dfibers.(f);
              Oracle.switch o ofibers.(f)
          | XHb k ->
              Detector.happens_before d k;
              Oracle.hb o k
          | XHa k ->
              Detector.happens_after d k;
              Oracle.ha o k
          | XRead (s, off, len) ->
              let addr = xbase s + off in
              Detector.read_range d ~addr ~len;
              Oracle.read_range o ~addr ~len
          | XWrite (s, off, len) ->
              let addr = xbase s + off in
              Detector.write_range d ~addr ~len;
              Oracle.write_range o ~addr ~len
          | XRw (s, off, len) ->
              let addr = xbase s + off in
              Detector.rw_range d ~addr ~len;
              (* rw_range is defined as read-then-write of one extent *)
              Oracle.read_range o ~addr ~len;
              Oracle.write_range o ~addr ~len
          | XAlloc s ->
              Detector.on_alloc d ~base:(xbase s) ~size:xsize;
              ignore (Oracle.map o ~base:(xbase s) ~size:xsize)
          | XFree s ->
              Detector.on_free d ~base:(xbase s);
              Oracle.unmap o ~base:(xbase s)
          | XWildW off ->
              let addr = (7 lsl 36) + (off * 24) + 5 in
              Detector.write_range d ~addr ~len:8;
              Oracle.write_range o ~addr ~len:8
          | XPush c ->
              let label = Printf.sprintf "ctx%d" c in
              Detector.push_context d label;
              Oracle.push o label
          | XPop ->
              Detector.pop_context d;
              Oracle.pop o)
        ops;
      Detector.races_total d = o.Oracle.total
      && List.map Report.to_string (Detector.races d)
         = List.map Report.to_string (Oracle.races o))

let tests =
  [
    Alcotest.test_case "vclock basics" `Quick vclock_basics;
    Alcotest.test_case "vclock find_gt" `Quick vclock_find_gt;
    Alcotest.test_case "epoch pack" `Quick epoch_pack;
    QCheck_alcotest.to_alcotest prop_join_ub;
    QCheck_alcotest.to_alcotest prop_join_least;
    QCheck_alcotest.to_alcotest prop_leq_partial_order;
    QCheck_alcotest.to_alcotest prop_join_commutative;
    Alcotest.test_case "no race same fiber" `Quick no_race_same_fiber;
    Alcotest.test_case "ww race across fibers" `Quick race_two_fibers_ww;
    Alcotest.test_case "write-read race" `Quick race_write_then_read;
    Alcotest.test_case "read-write race" `Quick race_read_then_write;
    Alcotest.test_case "read-read no race" `Quick no_race_read_read;
    Alcotest.test_case "release/acquire prevents race" `Quick sync_prevents_race;
    Alcotest.test_case "wrong key still races" `Quick sync_wrong_key_still_races;
    Alcotest.test_case "transitive sync" `Quick sync_transitive;
    Alcotest.test_case "post-release access races" `Quick
      release_then_continue_races;
    Alcotest.test_case "acquire without release" `Quick ha_without_hb_noop;
    Alcotest.test_case "shared read promotion" `Quick shared_read_promotion;
    Alcotest.test_case "synced write after shared reads" `Quick
      shared_read_then_synced_write;
    Alcotest.test_case "disjoint ranges" `Quick disjoint_ranges_no_race;
    Alcotest.test_case "overlapping ranges" `Quick overlap_one_cell_races;
    Alcotest.test_case "granule precision" `Quick granule_precision;
    Alcotest.test_case "zero length noop" `Quick zero_len_noop;
    Alcotest.test_case "unknown region mapped on demand" `Quick
      unknown_region_is_mapped;
    Alcotest.test_case "wild addresses do not alias" `Quick
      wild_addresses_do_not_alias;
    Alcotest.test_case "free clears shadow" `Quick free_clears_shadow;
    Alcotest.test_case "dedup across cells" `Quick dedup_many_cells;
    Alcotest.test_case "contexts in reports" `Quick contexts_in_reports;
    Alcotest.test_case "suppressions" `Quick suppression;
    Alcotest.test_case "suppressions file format" `Quick suppressions_file_format;
    Alcotest.test_case "counters" `Quick counters_track;
    Alcotest.test_case "shadow accounting" `Quick shadow_accounting;
    Alcotest.test_case "shadow page materialization" `Quick
      shadow_page_materialization;
    Alcotest.test_case "region cache invalidation" `Quick
      region_cache_invalidation;
    Alcotest.test_case "report pretty-print" `Quick report_pp_smoke;
    QCheck_alcotest.to_alcotest prop_fasttrack_vs_reference;
    QCheck_alcotest.to_alcotest prop_flat_arena_matches_oracle;
  ]

let () = Alcotest.run "tsan" [ ("tsan", tests) ]
