(* Unit tests for TypeART: type layouts, serialized ids, the allocation
   runtime, and interior-pointer queries. *)

open Typeart

let with_clean f =
  Memsim.Heap.reset ();
  Rt.reset ();
  let was = Rt.enabled () in
  Rt.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Rt.set_enabled was;
      Rt.reset ();
      Memsim.Heap.reset ())
    f

let sizeofs () =
  Alcotest.(check int) "f64" 8 (Typedb.sizeof Typedb.F64);
  Alcotest.(check int) "f32" 4 (Typedb.sizeof Typedb.F32);
  Alcotest.(check int) "i64" 8 (Typedb.sizeof Typedb.I64);
  Alcotest.(check int) "i32" 4 (Typedb.sizeof Typedb.I32);
  Alcotest.(check int) "i8" 1 (Typedb.sizeof Typedb.I8)

let struct_layout () =
  let s =
    Typedb.Struct
      { Typedb.sname = "particle"; fields = [ ("pos", Typedb.F64); ("vel", Typedb.F64); ("id", Typedb.I32) ] }
  in
  Alcotest.(check int) "packed size" 20 (Typedb.sizeof s);
  Alcotest.(check bool) "self equal" true (Typedb.equal s s);
  Alcotest.(check bool) "not equal to f64" false (Typedb.equal s Typedb.F64)

let type_ids_stable () =
  let a = Typedb.type_id Typedb.F64 in
  let b = Typedb.type_id Typedb.F64 in
  let c = Typedb.type_id Typedb.I32 in
  Alcotest.(check int) "interned" a b;
  Alcotest.(check bool) "distinct" true (a <> c);
  match Typedb.of_type_id a with
  | Some t -> Alcotest.(check bool) "roundtrip" true (Typedb.equal t Typedb.F64)
  | None -> Alcotest.fail "lost type"

let nested_struct_serialization () =
  let inner = Typedb.Struct { Typedb.sname = "v2"; fields = [ ("x", Typedb.F32); ("y", Typedb.F32) ] } in
  let outer = Typedb.Struct { Typedb.sname = "body"; fields = [ ("p", inner); ("m", Typedb.F64) ] } in
  let s = Typedb.to_string outer in
  Alcotest.(check bool) "mentions inner" true
    (String.length s > 10 && Typedb.sizeof outer = 16)

let alloc_tracked () =
  with_clean @@ fun () ->
  let p = Pass.alloc ~tag:"xs" Memsim.Space.Device Typedb.F64 32 in
  (match Pass.type_at (Memsim.Ptr.addr p) with
  | Some (ty, count) ->
      Alcotest.(check bool) "type" true (Typedb.equal ty Typedb.F64);
      Alcotest.(check int) "count" 32 count
  | None -> Alcotest.fail "untracked");
  Alcotest.(check (option int)) "extent" (Some 256)
    (Pass.extent_at (Memsim.Ptr.addr p))

let interior_pointer () =
  with_clean @@ fun () ->
  let p = Pass.alloc Memsim.Space.Device Typedb.F64 32 in
  let q = Memsim.Ptr.add p ~elt:8 10 in
  (match Pass.type_at (Memsim.Ptr.addr q) with
  | Some (_, count) -> Alcotest.(check int) "remaining elements" 22 count
  | None -> Alcotest.fail "interior not resolved");
  Alcotest.(check (option int)) "remaining bytes" (Some 176)
    (Pass.extent_at (Memsim.Ptr.addr q))

let misaligned_interior () =
  with_clean @@ fun () ->
  let p = Pass.alloc Memsim.Space.Device Typedb.F64 4 in
  let q = Memsim.Ptr.add_bytes p 12 in
  match Pass.type_at (Memsim.Ptr.addr q) with
  | Some (_, count) -> Alcotest.(check int) "floor of elements" 2 count
  | None -> Alcotest.fail "unresolved"

let free_untracks () =
  with_clean @@ fun () ->
  let p = Pass.alloc Memsim.Space.Device Typedb.F64 4 in
  let addr = Memsim.Ptr.addr p in
  Pass.free p;
  Alcotest.(check (option int)) "gone" None (Pass.extent_at addr)

let out_of_range_addr () =
  with_clean @@ fun () ->
  let p = Pass.alloc Memsim.Space.Device Typedb.F64 4 in
  Alcotest.(check (option int)) "past the end" None
    (Pass.extent_at (Memsim.Ptr.addr p + 32))

let disabled_runtime_tracks_nothing () =
  with_clean @@ fun () ->
  Rt.set_enabled false;
  let p = Pass.alloc Memsim.Space.Device Typedb.F64 4 in
  Alcotest.(check (option int)) "not tracked" None
    (Pass.extent_at (Memsim.Ptr.addr p));
  Rt.set_enabled true

let memory_kind_recorded () =
  with_clean @@ fun () ->
  let d = Pass.alloc Memsim.Space.Device Typedb.F64 4 in
  let m = Pass.alloc Memsim.Space.Managed Typedb.F64 4 in
  let check p space =
    match Pass.lookup (Memsim.Ptr.addr p) with
    | Some info -> Alcotest.(check string) "space" (Memsim.Space.to_string space)
        (Memsim.Space.to_string info.Rt.space)
    | None -> Alcotest.fail "untracked"
  in
  check d Memsim.Space.Device;
  check m Memsim.Space.Managed

let stats_counted () =
  with_clean @@ fun () ->
  let p = Pass.alloc Memsim.Space.Device Typedb.F64 4 in
  let q = Pass.alloc Memsim.Space.Device Typedb.I32 4 in
  Pass.free p;
  let allocs, frees, live = Rt.stats (Rt.instance ()) in
  Alcotest.(check int) "allocs" 2 allocs;
  Alcotest.(check int) "frees" 1 frees;
  Alcotest.(check int) "live" 1 live;
  Pass.free q

let struct_allocation () =
  with_clean @@ fun () ->
  let cell =
    Typedb.Struct { Typedb.sname = "cell"; fields = [ ("t", Typedb.F64); ("q", Typedb.F64) ] }
  in
  let p = Pass.alloc Memsim.Space.Device cell 10 in
  (match Pass.type_at (Memsim.Ptr.addr p) with
  | Some (ty, count) ->
      Alcotest.(check bool) "struct type" true (Typedb.equal ty cell);
      Alcotest.(check int) "count" 10 count
  | None -> Alcotest.fail "untracked");
  let q = Memsim.Ptr.add_bytes p 48 (* 3 cells in *) in
  match Pass.type_at (Memsim.Ptr.addr q) with
  | Some (_, count) -> Alcotest.(check int) "remaining structs" 7 count
  | None -> Alcotest.fail "interior struct unresolved"

(* Property: for any allocation and interior offset, extent_at + offset
   equals the allocation size. *)
let prop_extent_complement =
  QCheck.Test.make ~name:"extent + offset = size" ~count:200
    QCheck.(pair (int_range 1 1000) (int_range 0 999))
    (fun (count, off_raw) ->
      Memsim.Heap.reset ();
      Rt.reset ();
      Rt.set_enabled true;
      let p = Pass.alloc Memsim.Space.Device Typedb.F64 count in
      let off = off_raw mod (count * 8) in
      let r =
        match Pass.extent_at (Memsim.Ptr.addr p + off) with
        | Some e -> e + off = count * 8
        | None -> false
      in
      Rt.set_enabled false;
      Memsim.Heap.reset ();
      Rt.reset ();
      r)

let tests =
  [
    Alcotest.test_case "sizeofs" `Quick sizeofs;
    Alcotest.test_case "struct layout" `Quick struct_layout;
    Alcotest.test_case "type ids stable" `Quick type_ids_stable;
    Alcotest.test_case "nested struct serialization" `Quick
      nested_struct_serialization;
    Alcotest.test_case "alloc tracked" `Quick alloc_tracked;
    Alcotest.test_case "interior pointer" `Quick interior_pointer;
    Alcotest.test_case "misaligned interior" `Quick misaligned_interior;
    Alcotest.test_case "free untracks" `Quick free_untracks;
    Alcotest.test_case "out of range addr" `Quick out_of_range_addr;
    Alcotest.test_case "disabled runtime" `Quick disabled_runtime_tracks_nothing;
    Alcotest.test_case "memory kind recorded" `Quick memory_kind_recorded;
    Alcotest.test_case "stats" `Quick stats_counted;
    Alcotest.test_case "struct allocation" `Quick struct_allocation;
    QCheck_alcotest.to_alcotest prop_extent_complement;
  ]

let () = Alcotest.run "typeart" [ ("typeart", tests) ]
