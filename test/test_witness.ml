(* Tests for the prove -> certify -> repair pipeline: exact witness
   tuples on the seeded corpus, the zero-false-positive property over
   random kernels (every Proved verdict replays to a real conflicting
   access through an independent oracle), certificate round-trips with
   tamper rejection by the independent checker, repair ground truth,
   and the Proved_race verdict surfacing through the harness. *)

module RA = Cusan.Race_analysis
module W = Cusan.Witness
module Cert = Cusan.Certificate
module CC = Cusan.Certcheck
module Rep = Cusan.Repair
module Corpus = Testsuite.Corpus
module J = Reporting.Mjson

let with_heap f =
  Memsim.Heap.reset ();
  Fun.protect ~finally:Memsim.Heap.reset f

let find_entry name =
  List.find (fun (e : Corpus.entry) -> e.Corpus.name = name) Corpus.all

let prove_all (e : Corpus.entry) =
  let races = RA.analyze e.Corpus.m ~entry:e.Corpus.entry in
  List.map (fun r -> (r, W.prove e.Corpus.m ~entry:e.Corpus.entry r)) races

(* --- exact witness tuples ------------------------------------------------ *)

(* The solver enumerates deterministically, so the witness tuple for
   each corpus candidate is a regression value, not just "some proof". *)
let check_tuple name (w : W.t) (tid1, tid2, ntid, params, byte, phase, kinds) =
  Alcotest.(check (pair int int)) (name ^ ": thread pair") (tid1, tid2)
    (w.W.wtid1, w.W.wtid2);
  Alcotest.(check int) (name ^ ": ntid") ntid w.W.wntid;
  Alcotest.(check (list (pair string int))) (name ^ ": valuation") params
    w.W.wparams;
  Alcotest.(check int) (name ^ ": byte") byte w.W.wbyte;
  Alcotest.(check int) (name ^ ": phase") phase w.W.wphase;
  Alcotest.(check string) (name ^ ": kinds") kinds w.W.wkinds

let witness_tuples () =
  with_heap @@ fun () ->
  let proved name i =
    match List.nth (prove_all (find_entry name)) i with
    | _, W.Proved w -> w
    | r, W.Unproved why ->
        Alcotest.failf "%s race %d (%s) unproved: %s" name i (RA.describe r)
          why
  in
  check_tuple "neighbor_write"
    (proved "neighbor_write" 0)
    (0, 1, 2, [], 8, 0, "R/W");
  check_tuple "reduction_nosync rw"
    (proved "reduction_nosync" 0)
    (0, 1, 2, [], 0, 0, "R/W");
  check_tuple "reduction_nosync ww"
    (proved "reduction_nosync" 1)
    (0, 1, 2, [], 0, 0, "W/W");
  check_tuple "two_phase_nobarrier"
    (proved "two_phase_nobarrier" 0)
    (0, 1, 2, [], 0, 0, "R/W");
  check_tuple "unknown_stride"
    (proved "unknown_stride" 0)
    (0, 1, 2, [ ("s", 0) ], 0, 0, "W/W");
  check_tuple "exchange_nobarrier"
    (proved "exchange_nobarrier" 0)
    (0, 1, 2, [], 8, 0, "R/W");
  Alcotest.(check string) "unknown_stride witness description"
    "threads (0,1) of ntid 2 with s=0 collide at byte 0 in phase 0 (W/W)"
    (W.describe (proved "unknown_stride" 0))

(* Every corpus entry's proved/unproved split matches the seeded
   ground truth, and — the upgrade criterion — every Must proves. *)
let corpus_proves () =
  List.iter
    (fun (e : Corpus.entry) ->
      if e.Corpus.expect <> Corpus.Invalid then begin
        with_heap @@ fun () ->
        let proofs = prove_all e in
        List.iter
          (fun ((r : RA.race), o) ->
            if r.RA.verdict = RA.Must then
              match o with
              | W.Proved _ -> ()
              | W.Unproved why ->
                  Alcotest.failf "%s: must-race %s did not prove: %s"
                    e.Corpus.name (RA.describe r) why)
          proofs;
        Alcotest.(check bool)
          (Fmt.str "%s: proves ground truth" e.Corpus.name)
          e.Corpus.proves
          (List.exists (fun (_, o) -> match o with
               | W.Proved _ -> true | W.Unproved _ -> false)
             proofs)
      end)
    Corpus.all

(* --- zero false positives over random kernels ---------------------------- *)

(* Same generator shape as test_race's zero-false-negative property:
   random barrier kernels over two f64 buffers, index expressions
   value-independent. Here the direction is reversed: whenever the
   solver PROVES a candidate, an independent tracer-based replay of the
   witness configuration must exhibit a real conflicting access — and
   every Must verdict must prove (musts carry a {0,1} witness by
   construction). *)

let grid = 4
let nelts = 64

let gen_idx ~loopvar : Kir.Ir.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let base =
    [
      (3, return Kir.Dsl.tid);
      (2, map (fun c -> Kir.Dsl.i c) (int_range 0 40));
      (3, map (fun c -> Kir.Dsl.(tid +. i c)) (int_range 0 8));
      (1, return Kir.Dsl.(tid *. i 2));
      (1, map (fun c -> Kir.Dsl.((tid +. i c) %. ntid)) (int_range 0 3));
    ]
  in
  frequency
    (if loopvar then (2, return (Kir.Dsl.v "l")) :: base else base)

let gen_value ~loopvar : Kir.Ir.expr QCheck.Gen.t =
  let open QCheck.Gen in
  frequency
    [
      (2, map (fun x -> Kir.Dsl.f (float_of_int x)) (int_range 0 9));
      (2,
       map2
         (fun b idx -> Kir.Dsl.(load (p b) idx))
         (int_range 0 1) (gen_idx ~loopvar));
      (1, return Kir.Dsl.(i2f tid));
    ]

let gen_store ~loopvar : Kir.Ir.stmt QCheck.Gen.t =
  let open QCheck.Gen in
  map3
    (fun b idx v -> Kir.Dsl.store (Kir.Dsl.p b) idx v)
    (int_range 0 1) (gen_idx ~loopvar) (gen_value ~loopvar)

let gen_stmt : Kir.Ir.stmt QCheck.Gen.t =
  let open QCheck.Gen in
  frequency
    [
      (5, gen_store ~loopvar:false);
      (2, return Kir.Dsl.barrier);
      (2,
       map2
         (fun k s -> Kir.Dsl.(if_ (tid ==. i k) [ s ] []))
         (int_range 0 (grid - 1))
         (gen_store ~loopvar:false));
      (1,
       map3
         (fun lo n s -> Kir.Dsl.(for_ "l" (i lo) (i (lo + n)) [ s ]))
         (int_range 0 10) (int_range 1 5) (gen_store ~loopvar:true));
    ]

let gen_kernel : Kir.Ir.modul QCheck.Gen.t =
  let open QCheck.Gen in
  map
    (fun body ->
      Kir.Dsl.(modul ~kernels:[ "k" ] [ func "k" [ ptr "a"; ptr "b" ] body ]))
    (list_size (int_range 2 6) gen_stmt)

let pp_kernel (m : Kir.Ir.modul) =
  Fmt.str "%a" (Fmt.list Kir.Ir.pp_func) m.Kir.Ir.funcs

(* Independent replay oracle (the tracer API, not the witness engine's
   footprint helper): do the two witness threads make a same-phase
   overlapping access pair with a write at the witness launch width? *)
let witness_replays m (w : W.t) =
  with_heap @@ fun () ->
  let args =
    [|
      Kir.Interp.VPtr (Memsim.Heap.alloc Memsim.Space.Device (nelts * 8));
      VPtr (Memsim.Heap.alloc Memsim.Space.Device (nelts * 8));
    |]
  in
  let footprint tid =
    let phase = ref 0 and acc = ref [] in
    let record wr p ~bytes =
      acc := (!phase, Memsim.Ptr.addr p, bytes, wr) :: !acc
    in
    Kir.Interp.run_thread
      ~tracer:{ Kir.Interp.on_read = record false; on_write = record true }
      ~on_barrier:(fun () -> incr phase)
      m ~name:"k" ~args ~tid ~ntid:w.W.wntid;
    !acc
  in
  let fp1 = footprint w.W.wtid1 and fp2 = footprint w.W.wtid2 in
  List.exists
    (fun (ph1, a1, n1, w1) ->
      List.exists
        (fun (ph2, a2, n2, w2) ->
          ph1 = ph2 && (w1 || w2) && a1 < a2 + n2 && a2 < a1 + n1)
        fp2)
    fp1

let prop_zero_false_positives =
  QCheck.Test.make
    ~name:"every Proved verdict replays to a real conflicting access"
    ~count:600
    (QCheck.make ~print:pp_kernel gen_kernel)
    (fun m ->
      Kir.Validate.check_module m;
      let races = (with_heap @@ fun () -> RA.analyze m ~entry:"k") in
      List.for_all
        (fun (r : RA.race) ->
          match (with_heap @@ fun () -> W.prove m ~entry:"k" r) with
          | W.Proved w ->
              (* generated kernels have no scalar params, so the
                 witness configuration is fully captured by the thread
                 pair and launch width *)
              witness_replays m w
          | W.Unproved _ ->
              (* a Must carries a {0,1} witness by construction; the
                 solver must validate it *)
              r.RA.verdict <> RA.Must)
        races)

(* --- barrier repair ------------------------------------------------------ *)

let repair_expectations () =
  List.iter
    (fun (e : Corpus.entry) ->
      if e.Corpus.expect <> Corpus.Invalid then begin
        with_heap @@ fun () ->
        let got = Rep.suggest e.Corpus.m ~entry:e.Corpus.entry in
        match (got, e.Corpus.repair) with
        | Rep.Already_clean, Corpus.Nothing_to_fix -> ()
        | Rep.Unrepairable _, Corpus.Unfixable -> ()
        | Rep.Fixed f, Corpus.Fixable pts ->
            Alcotest.(check (list int))
              (Fmt.str "%s: minimal insertion set" e.Corpus.name)
              pts f.Rep.fpoints;
            (* independently re-verify the suggestion: the rewritten
               module validates and the re-analysis has no must and no
               provable may *)
            let m' =
              Kir.Rewrite.insert_barriers e.Corpus.m ~entry:e.Corpus.entry
                ~points:f.Rep.fpoints
            in
            Kir.Validate.check_module m';
            let races' = RA.analyze m' ~entry:e.Corpus.entry in
            Alcotest.(check bool)
              (Fmt.str "%s: fix kills the musts" e.Corpus.name)
              false (RA.has_must races');
            List.iter
              (fun r ->
                match W.prove m' ~entry:e.Corpus.entry r with
                | W.Proved w ->
                    Alcotest.failf "%s: fixed kernel still proves: %s"
                      e.Corpus.name (W.describe w)
                | W.Unproved _ -> ())
              races'
        | Rep.Already_clean, _ ->
            Alcotest.failf "%s: expected %s, repair saw nothing to fix"
              e.Corpus.name
              (match e.Corpus.repair with
              | Corpus.Fixable _ -> "a fix"
              | _ -> "unrepairable")
        | Rep.Fixed f, _ ->
            Alcotest.failf "%s: unexpected fix at [%s]" e.Corpus.name
              (String.concat ";" (List.map string_of_int f.Rep.fpoints))
        | Rep.Unrepairable why, _ ->
            Alcotest.failf "%s: unexpectedly unrepairable: %s" e.Corpus.name
              why
      end)
    Corpus.all

let rewrite_points () =
  (* gap numbering: 0 prepends, length appends, interior gaps insert
     before the indexed statement; bad entries and out-of-range points
     are rejected *)
  let m = Corpus.exchange_nobarrier in
  let m' = Kir.Rewrite.insert_barriers m ~entry:"exchange_nobarrier" ~points:[ 0; 1; 2 ] in
  let f = Option.get (Kir.Ir.find_func m' "exchange_nobarrier") in
  Alcotest.(check int) "three barriers inserted" 5 (List.length f.Kir.Ir.body);
  Alcotest.(check bool) "first is a barrier" true
    (List.nth f.Kir.Ir.body 0 = Kir.Ir.Barrier);
  Alcotest.(check bool) "last is a barrier" true
    (List.nth f.Kir.Ir.body 4 = Kir.Ir.Barrier);
  (match
     Kir.Rewrite.insert_barriers m ~entry:"exchange_nobarrier" ~points:[ 7 ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range point accepted");
  match Kir.Rewrite.insert_barriers m ~entry:"nope" ~points:[ 0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown entry accepted"

(* --- certificates --------------------------------------------------------- *)

let roundtrip (m : Kir.Ir.modul) ~entry =
  match Cert.build m ~entry with
  | Error e -> Error e
  | Ok c -> (
      match J.of_string (J.to_string_pretty (Cert.to_json c)) with
      | Error e -> Alcotest.failf "%s: JSON round-trip failed: %s" entry e
      | Ok doc -> Ok (CC.check m ~entry doc))

let certificates_roundtrip () =
  with_heap @@ fun () ->
  (* every race-free corpus entry certifies and re-checks *)
  List.iter
    (fun (e : Corpus.entry) ->
      if e.Corpus.expect = Corpus.Clean then
        match roundtrip e.Corpus.m ~entry:e.Corpus.entry with
        | Ok (Ok ()) -> ()
        | Ok (Error why) ->
            Alcotest.failf "%s: checker rejected its own certificate: %s"
              e.Corpus.name why
        | Error why ->
            Alcotest.failf "%s: clean kernel did not certify: %s"
              e.Corpus.name why)
    Corpus.all;
  (* racy kernels refuse certification *)
  List.iter
    (fun (e : Corpus.entry) ->
      if e.Corpus.expect = Corpus.May || e.Corpus.expect = Corpus.Must then
        match Cert.build e.Corpus.m ~entry:e.Corpus.entry with
        | Error _ -> ()
        | Ok _ -> Alcotest.failf "%s: racy kernel certified" e.Corpus.name)
    Corpus.all;
  (* a real app kernel end-to-end *)
  match roundtrip Apps.Tealeaf.device_module ~entry:"tl_matvec" with
  | Ok (Ok ()) -> ()
  | Ok (Error why) -> Alcotest.failf "tl_matvec re-check failed: %s" why
  | Error why -> Alcotest.failf "tl_matvec did not certify: %s" why

(* Tampered certificates must be rejected: the checker trusts nothing
   but the serialized numbers it can re-derive. *)
let mutate_doc doc ~field f =
  match doc with
  | J.Obj kvs ->
      J.Obj (List.map (fun (k, v) -> if k = field then (k, f v) else (k, v)) kvs)
  | _ -> Alcotest.fail "certificate is not an object"

let drop_last = function
  | J.List xs -> J.List (List.filteri (fun i _ -> i < List.length xs - 1) xs)
  | _ -> Alcotest.fail "expected a list"

let certificates_tamper_rejected () =
  with_heap @@ fun () ->
  let m = Corpus.two_phase_barrier in
  let entry = "two_phase_barrier" in
  let doc =
    match Cert.build m ~entry with
    | Ok c -> Cert.to_json c
    | Error e -> Alcotest.failf "build failed: %s" e
  in
  let expect_reject what doc' =
    match CC.check m ~entry doc' with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "checker accepted a certificate with %s" what
  in
  (* sanity: the untampered document passes *)
  (match CC.check m ~entry doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "untampered certificate rejected: %s" e);
  expect_reject "a missing fact" (mutate_doc doc ~field:"facts" drop_last);
  expect_reject "a missing access"
    (mutate_doc doc ~field:"accesses" drop_last);
  expect_reject "a lying rule"
    (mutate_doc doc ~field:"facts" (function
      | J.List (J.Obj kvs :: rest) ->
          (* first fact covers the W/W pair; claiming both-reads must
             fail the re-derivation *)
          J.List
            (J.Obj
               (List.map
                  (fun (k, v) ->
                    if k = "rule" then (k, J.Str "both-reads") else (k, v))
                  kvs)
            :: rest)
      | _ -> Alcotest.fail "expected facts"));
  expect_reject "the wrong entry name"
    (mutate_doc doc ~field:"entry" (fun _ -> J.Str "someone_else"));
  (* a certificate for a *different* (racier) kernel body must not
     check against this module either way around *)
  (match Cert.build Corpus.offset_write ~entry:"offset_write" with
  | Ok c -> (
      match CC.check m ~entry (Cert.to_json c) with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "foreign certificate accepted")
  | Error e -> Alcotest.failf "offset_write did not certify: %s" e)

(* --- Proved_race through the harness ------------------------------------- *)

let harness_proved_race () =
  let case =
    List.find
      (fun (c : Testsuite.Cases.case) ->
        c.Testsuite.Cases.name = "intra-kernel/exchange_nobarrier_nok")
      (Testsuite.Cases.all ())
  in
  let v = Testsuite.Runner.run_case ~prove_static:true case in
  Alcotest.(check bool) "case detected" true v.Testsuite.Runner.pass;
  Alcotest.(check bool) "a Proved_race verdict surfaced" true
    (List.exists
       (fun (_, verdict, _) -> verdict = Cudasim.Kernel.Proved_race)
       v.Testsuite.Runner.static_races);
  (* and without witness mode the same case still reports plain musts:
     default behavior is unchanged *)
  let v0 = Testsuite.Runner.run_case case in
  Alcotest.(check bool) "no Proved_race without prove_static" false
    (List.exists
       (fun (_, verdict, _) -> verdict = Cudasim.Kernel.Proved_race)
       v0.Testsuite.Runner.static_races);
  Alcotest.(check bool) "Must_race still reported" true
    (List.exists
       (fun (_, verdict, _) -> verdict = Cudasim.Kernel.Must_race)
       v0.Testsuite.Runner.static_races)

(* --- registration -------------------------------------------------------- *)

let tests =
  [
    Alcotest.test_case "witness tuples (corpus regression)" `Quick
      witness_tuples;
    Alcotest.test_case "corpus proves ground truth; musts upgrade" `Quick
      corpus_proves;
    Alcotest.test_case "repair matches corpus ground truth" `Quick
      repair_expectations;
    Alcotest.test_case "rewrite: barrier insertion points" `Quick
      rewrite_points;
    Alcotest.test_case "certificates round-trip" `Quick certificates_roundtrip;
    Alcotest.test_case "tampered certificates rejected" `Quick
      certificates_tamper_rejected;
    Alcotest.test_case "Proved_race surfaces through the harness" `Quick
      harness_proved_race;
    QCheck_alcotest.to_alcotest prop_zero_false_positives;
  ]

let () = Alcotest.run "witness" [ ("witness-pipeline", tests) ]
